//! Minimal benchmark harness exposing the `criterion` API surface used by
//! this workspace, for offline builds.
//!
//! Measurement model: each benchmark warms up briefly, then runs
//! `sample_size` samples where each sample executes enough iterations to
//! cover a fixed slice of the measurement budget. The median sample is
//! reported in ns/iter plus derived element throughput. `--test` (the
//! `cargo bench -- --test` smoke mode) runs every benchmark exactly once
//! and skips timing, matching upstream semantics.

use std::time::{Duration, Instant};

/// Throughput annotation used to derive rate numbers from iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How the harness was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement.
    Measure,
    /// `--test`: run each benchmark body once, no timing.
    Test,
}

/// Top-level harness state, handed to each `criterion_group!` function.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    measurement_time: Duration,
    warm_up_time: Duration,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: Mode::Measure,
            filter: None,
            measurement_time: Duration::from_millis(900),
            warm_up_time: Duration::from_millis(150),
            default_sample_size: 12,
        }
    }
}

impl Criterion {
    /// Builds a harness from CLI args (`--test`, optional name filter).
    /// Unrecognized flags (e.g. `--bench`, passed by cargo) are ignored.
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.mode = Mode::Test,
                s if s.starts_with("--") => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(id, None, sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.mode == Mode::Test {
            let mut b = Bencher { mode: Mode::Test, iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }

        // Warm-up: discover a per-sample iteration count that fills the
        // per-sample budget.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut iters: u64 = 1;
        let mut per_iter;
        loop {
            let mut b = Bencher { mode: Mode::Measure, iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
            if Instant::now() >= warm_deadline {
                break;
            }
            iters = iters.saturating_mul(2).min(1 << 24);
        }
        let sample_budget = self.measurement_time / sample_size as u32;
        let iters_per_sample = (sample_budget.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1 << 24) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b =
                Bencher { mode: Mode::Measure, iters: iters_per_sample, elapsed: Duration::ZERO };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];

        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!(" {:>12}/s", fmt_rate(n as f64 * 1e9 / median)),
            Throughput::Bytes(n) => format!(" {:>10}B/s", fmt_rate(n as f64 * 1e9 / median)),
        });
        println!(
            "{id:<40} time: [{} {} {}]{}",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi),
            rate.unwrap_or_default(),
        );
    }

    /// Prints the closing summary (upstream prints report pointers here).
    pub fn final_summary(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec < 1_000.0 {
        format!("{per_sec:.1}")
    } else if per_sec < 1_000_000.0 {
        format!("{:.2}K", per_sec / 1_000.0)
    } else if per_sec < 1_000_000_000.0 {
        format!("{:.2}M", per_sec / 1_000_000.0)
    } else {
        format!("{:.2}G", per_sec / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing throughput / sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        let sample_size = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, self.throughput, sample_size, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Test {
            black_box(routine());
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group: a runner function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion { mode: Mode::Test, ..Criterion::default() };
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn group_settings_apply() {
        let mut c = Criterion {
            mode: Mode::Measure,
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(2),
            ..Criterion::default()
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.sample_size(3);
        let mut total = 0u64;
        g.bench_function("count", |b| b.iter(|| total += 1));
        g.finish();
        assert!(total > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            mode: Mode::Test,
            filter: Some("match-me".to_string()),
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("yes-match-me", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
