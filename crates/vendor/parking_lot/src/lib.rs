//! Minimal reimplementation of the `parking_lot` API surface used by this
//! workspace, backed by `std::sync` primitives.
//!
//! Differences from real parking_lot that matter here: none. Poisoning is
//! absorbed (`lock()` never returns `Err`; a panic while holding a lock
//! does not poison it for later users, matching parking_lot semantics as
//! closely as std allows by unwrapping into the inner guard).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Self { inner: std::sync::Mutex::new(t) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(g) }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Blocks until notified or `dur` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        dur: std::time::Duration,
    ) -> WaitTimeoutResult {
        self.wait_until(guard, Instant::now() + dur)
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    // Tracks whether a writer ever panicked; kept only to mirror the
    // "ignore poisoning" contract explicitly.
    _nonpoisoning: AtomicBool,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `t`.
    pub const fn new(t: T) -> Self {
        Self { _nonpoisoning: AtomicBool::new(false), inner: std::sync::RwLock::new(t) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self._nonpoisoning.load(Ordering::Relaxed);
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
