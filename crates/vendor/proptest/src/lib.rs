//! Minimal property-testing harness exposing the `proptest` API surface
//! used by this workspace, for offline builds.
//!
//! Supported: the [`Strategy`] trait with `prop_map`, [`Just`],
//! `any::<T>()` for primitives and small tuples, numeric ranges as
//! strategies, simple `[class]{m,n}` string patterns, tuple strategies,
//! `prop::collection::{vec, btree_set}`, `prop::option::of`, and the
//! `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Not supported (not needed here): shrinking, persisted failure regressions,
//! weighted `prop_oneof!`, recursive strategies, filters. On failure the
//! harness reports the failing case number and seed so the run can be
//! reproduced deterministically.

pub mod strategy {
    use rand::rngs::StdRng;

    /// A generator of test values.
    ///
    /// Object safe: `prop_oneof!` boxes heterogeneous strategies with the
    /// same output type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy (for storing heterogeneous strategies).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among equally-weighted strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds from boxed options; panics when empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// `&'static str` patterns of the shape `[class]{m,n}` (or a literal
    /// string) generate matching strings.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // Finite, sign-symmetric, wide dynamic range; avoids NaN/inf
            // which the workspace's float payloads never carry.
            let mag: f64 = rng.gen::<f64>() * 1e15;
            if rng.gen() {
                mag
            } else {
                -mag
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($(($($t:ident),+))+) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        )+};
    }
    impl_arbitrary_tuple! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy over `T`'s full domain.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Collection size bounds (`from..to`, exclusive upper bound).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..self.hi_exclusive)
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy producing `BTreeSet`s (duplicates collapse, so the set may
    /// be smaller than the drawn size, matching proptest semantics closely
    /// enough for the consumers here).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::btree_set(element, size)`.
    pub fn btree_set<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size: size.into() }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Option`s (`None` 25% of the time, matching
    /// proptest's default weighting).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod string {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates a string from a pattern of the shape `[class]{m,n}`,
    /// `[class]{n}`, or a plain literal (returned as-is).
    pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        match parse(pattern) {
            Some((chars, lo, hi)) => {
                let n = rng.gen_range(lo..=hi);
                (0..n)
                    .map(|_| chars[rng.gen_range(0..chars.len())])
                    .collect()
            }
            None => pattern.to_string(),
        }
    }

    fn parse(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (a, b) = (cs[i], cs[i + 2]);
                for c in a..=b {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        Some((chars, lo, hi))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use rand::SeedableRng;

        #[test]
        fn class_patterns_generate_members() {
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..200 {
                let s = generate_from_pattern("[a-zA-Z0-9]{0,40}", &mut rng);
                assert!(s.len() <= 40);
                assert!(s.chars().all(|c| c.is_ascii_alphanumeric()), "{s:?}");
            }
        }

        #[test]
        fn literal_fallback() {
            let mut rng = StdRng::seed_from_u64(1);
            assert_eq!(generate_from_pattern("plain", &mut rng), "plain");
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps offline CI fast while
            // still exercising wide input variety (no shrinking here, so
            // failures print the case seed for replay).
            Self { cases: 64 }
        }
    }

    /// Deterministic case runner.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner.
        pub fn new(config: ProptestConfig) -> Self {
            Self { config }
        }

        /// Runs `case` once per configured case with a per-case
        /// deterministic RNG; panics (after reporting the case seed) when
        /// a case fails.
        pub fn run_named(&mut self, name: &str, mut case: impl FnMut(&mut StdRng)) {
            // Stable seed from the property name so runs are reproducible
            // without any persistence files.
            let base = name
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                });
            for i in 0..self.config.cases {
                let seed = base.wrapping_add(i as u64);
                let mut rng = StdRng::seed_from_u64(seed);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    case(&mut rng)
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest: property `{name}` failed at case {i} (seed {seed:#x})"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// Everything the workspace imports via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// Module alias so `prop::collection::vec` etc. resolve.
    pub use crate as prop;
}

pub use crate::strategy::Strategy;

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands each test item of `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run_named(stringify!($name), |__proptest_rng| {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                $body
            });
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(Box::new($strat) as $crate::strategy::BoxedStrategy<_>,)+
        ])
    };
}

/// Asserts a condition inside a property (panics, failing the case).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn oneof_and_collections_compose(
            v in prop::collection::vec(
                prop_oneof![Just(1u8), (5u8..10).prop_map(|x| x)],
                0..16,
            ),
            opt in prop::option::of(any::<u32>()),
            s in "[a-c]{2,4}",
        ) {
            prop_assert!(v.iter().all(|&x| x == 1 || (5..10).contains(&x)));
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            let _ = opt;
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut seen_a = Vec::new();
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(5));
        runner.run_named("det", |rng| {
            seen_a.push(crate::arbitrary::any::<u64>().generate(rng));
        });
        let mut seen_b = Vec::new();
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(5));
        runner.run_named("det", |rng| {
            seen_b.push(crate::arbitrary::any::<u64>().generate(rng));
        });
        assert_eq!(seen_a, seen_b);
    }
}
