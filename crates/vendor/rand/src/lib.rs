//! Minimal reimplementation of the `rand` 0.8 API surface used by this
//! workspace, for offline builds.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a
//! different generator than upstream's ChaCha12, so absolute sequences
//! differ from real `rand`, but every consumer in this workspace only
//! relies on determinism-under-seed and reasonable uniformity, both of
//! which hold.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full domain (the `Standard`
/// distribution of real rand).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let u = <$t as StandardSample>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over `T`'s full domain (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace-standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the seed into four nonzero words.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling extensions.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// A fresh generator seeded from the system clock (non-deterministic;
/// provided for API compatibility, unused by the deterministic harness).
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_unit_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice unchanged");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
