//! Minimal reimplementation of the `bytes` crate for offline builds.
//!
//! Only the API surface the AETS workspace uses is provided: [`Bytes`]
//! (a cheaply-cloneable, sliceable view into shared immutable storage),
//! [`BytesMut`] (a growable buffer that freezes into `Bytes`), and the
//! [`Buf`]/[`BufMut`] cursor traits with the little-endian accessors the
//! value-log codec needs.
//!
//! Semantics match the real crate where it matters for this workspace:
//! `Bytes::clone`, `slice`, and `split_to` are O(1) and share the same
//! backing allocation — the property the zero-copy decode path relies on
//! (a decoded `Value::Text` keeps the whole epoch buffer alive via its
//! `Arc` instead of copying the payload out).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable chunk of shared immutable memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static slice (copies once; the real crate borrows, but no
    /// caller in this workspace relies on the zero-copy of statics).
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Self::from(s.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a view of a subrange, sharing the backing storage (O(1)).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of range 0..{}", self.len());
        Self { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Splits off and returns the first `n` bytes, advancing `self` past
    /// them. Both halves share the backing storage (O(1)).
    pub fn split_to(&mut self, n: usize) -> Self {
        assert!(n <= self.len(), "split_to {n} > len {}", self.len());
        let head = Self { data: self.data.clone(), start: self.start, end: self.start + n };
        self.start += n;
        head
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// Shared `Debug` body for `Bytes` and `BytesMut`.
macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "b\"")?;
            for &b in self.as_slice().iter().take(64) {
                if (0x20..0x7f).contains(&b) {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\x{b:02x}")?;
                }
            }
            if self.as_slice().len() > 64 {
                write!(f, "…({} bytes)", self.as_slice().len())?;
            }
            write!(f, "\"")
        }
    };
}

impl std::fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reserves space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Converts into an immutable [`Bytes`] (O(1), reuses the allocation).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

/// Read cursor over a byte source (little-endian accessors only; that is
/// all the value-log codec uses).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `n`.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut a = [0u8; 2];
        a.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(a)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(a)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(a)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance {n} > remaining {}", self.len());
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor (little-endian writers only).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_accessors() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_i64_le(-9);
        b.put_f64_le(2.5);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.as_slice(), b"xyz");
        r.advance(3);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        // Same backing Arc: no new allocation.
        assert!(Arc::ptr_eq(&b.data, &s.data));
        let mut m = b.clone();
        let head = m.split_to(2);
        assert_eq!(head.as_slice(), &[0, 1]);
        assert_eq!(m.as_slice(), &[2, 3, 4, 5]);
        assert!(Arc::ptr_eq(&head.data, &m.data));
    }

    #[test]
    #[should_panic]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }
}
