//! A small LSTM forecaster — the recurrent member of the QB5000
//! ensemble. Univariate with weights shared across tables: each table's
//! window is normalized by its own mean, batched along the second tensor
//! dimension.

use crate::series::{Forecaster, RateSeries};
use aets_common::rng::seeded_rng;
use aets_neural::{Adam, Tape, Tensor, Var};
use rand::seq::SliceRandom;

const GATES: usize = 4; // input, forget, output, candidate

/// LSTM hyper-parameters.
#[derive(Debug, Clone)]
pub struct LstmConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Input window length.
    pub t_in: usize,
    /// Maximum forecast horizon (direct multi-output head).
    pub max_horizon: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Windows sampled per epoch.
    pub steps_per_epoch: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            t_in: 12,
            max_horizon: 15,
            epochs: 30,
            steps_per_epoch: 8,
            lr: 5e-3,
            seed: 7,
        }
    }
}

/// Trained LSTM forecaster.
pub struct Lstm {
    cfg: LstmConfig,
    // Parameter layout: [wx;4] [wh;4] [b;4] [wo] [bo]
    params: Vec<Tensor>,
}

impl Lstm {
    fn param_shapes(cfg: &LstmConfig) -> Vec<Vec<usize>> {
        let h = cfg.hidden;
        let mut shapes = Vec::new();
        for _ in 0..GATES {
            shapes.push(vec![h, 1]);
        }
        for _ in 0..GATES {
            shapes.push(vec![h, h]);
        }
        for _ in 0..GATES {
            shapes.push(vec![h]);
        }
        shapes.push(vec![cfg.max_horizon, h]);
        shapes.push(vec![cfg.max_horizon]);
        shapes
    }

    /// Unrolls the LSTM over `xs` (each `[1, B]`) and returns the
    /// prediction `[max_horizon, B]`.
    fn forward(&self, tape: &mut Tape, pvars: &[Var], xs: &[Var], batch: usize) -> Var {
        let h = self.cfg.hidden;
        let mut hs = tape.leaf(Tensor::zeros(&[h, batch]));
        let mut cs = tape.leaf(Tensor::zeros(&[h, batch]));
        for &x in xs {
            let mut gates = Vec::with_capacity(GATES);
            for gi in 0..GATES {
                let wx = pvars[gi];
                let wh = pvars[GATES + gi];
                let b = pvars[2 * GATES + gi];
                let a = tape.matmul(wx, x);
                let r = tape.matmul(wh, hs);
                let s = tape.add(a, r);
                gates.push(tape.add_bias(s, b));
            }
            let i = tape.sigmoid(gates[0]);
            let f = tape.sigmoid(gates[1]);
            let o = tape.sigmoid(gates[2]);
            let g = tape.tanh(gates[3]);
            let fc = tape.mul(f, cs);
            let ig = tape.mul(i, g);
            cs = tape.add(fc, ig);
            let ct = tape.tanh(cs);
            hs = tape.mul(o, ct);
        }
        let wo = pvars[3 * GATES];
        let bo = pvars[3 * GATES + 1];
        let y = tape.matmul(wo, hs);
        tape.add_bias(y, bo)
    }

    /// Trains on the series' sliding windows.
    pub fn fit(train: &RateSeries, cfg: LstmConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let shapes = Self::param_shapes(&cfg);
        let params: Vec<Tensor> = shapes
            .iter()
            .map(|s| {
                let fan_in = s.iter().skip(1).product::<usize>().max(1) as f32;
                Tensor::rand_uniform(&mut rng, s, (1.0 / fan_in.sqrt()).min(0.5))
            })
            .collect();
        let shape_refs: Vec<&[usize]> = shapes.iter().map(|s| s.as_slice()).collect();
        let mut opt = Adam::new(&shape_refs, cfg.lr, 1e-5);
        let mut model = Self { cfg, params };

        let windows = train.windows(model.cfg.t_in, model.cfg.max_horizon);
        assert!(!windows.is_empty(), "training series too short for LSTM");
        let n = train.width();
        let mut order: Vec<usize> = (0..windows.len()).collect();
        for _ in 0..model.cfg.epochs {
            order.shuffle(&mut rng);
            for &wi in order.iter().take(model.cfg.steps_per_epoch) {
                let (input, target) = &windows[wi];
                let means: Vec<f64> = (0..n)
                    .map(|j| {
                        (input.iter().map(|r| r[j]).sum::<f64>() / input.len() as f64).max(1e-6)
                    })
                    .collect();
                let mut tape = Tape::new();
                let pvars: Vec<Var> = model.params.iter().map(|p| tape.leaf(p.clone())).collect();
                let xs: Vec<Var> = input
                    .iter()
                    .map(|row| {
                        let data: Vec<f32> =
                            row.iter().zip(&means).map(|(v, m)| (v / m) as f32).collect();
                        tape.leaf(Tensor::new(&[1, n], data))
                    })
                    .collect();
                let pred = model.forward(&mut tape, &pvars, &xs, n);
                let tgt: Vec<f32> = target
                    .iter()
                    .flat_map(|row| row.iter().zip(&means).map(|(v, m)| (v / m) as f32))
                    .collect();
                let loss = tape.mae_loss(pred, Tensor::new(&[model.cfg.max_horizon, n], tgt));
                let grads = tape.backward(loss);
                let grad_refs: Vec<Option<&Tensor>> = pvars.iter().map(|v| grads.get(*v)).collect();
                opt.step(&mut model.params, &grad_refs);
            }
        }
        model
    }
}

impl Forecaster for Lstm {
    fn name(&self) -> &'static str {
        "LSTM"
    }

    fn forecast(&self, history: &[Vec<f64>], t_f: usize) -> Vec<Vec<f64>> {
        let n = history.last().map_or(0, Vec::len);
        let t_f = t_f.min(self.cfg.max_horizon);
        let window = &history[history.len().saturating_sub(self.cfg.t_in)..];
        let means: Vec<f64> = (0..n)
            .map(|j| (window.iter().map(|r| r[j]).sum::<f64>() / window.len() as f64).max(1e-6))
            .collect();
        let mut tape = Tape::new();
        let pvars: Vec<Var> = self.params.iter().map(|p| tape.leaf(p.clone())).collect();
        let xs: Vec<Var> = window
            .iter()
            .map(|row| {
                let data: Vec<f32> = row.iter().zip(&means).map(|(v, m)| (v / m) as f32).collect();
                tape.leaf(Tensor::new(&[1, n], data))
            })
            .collect();
        let pred = self.forward(&mut tape, &pvars, &xs, n);
        let pv = tape.value(pred);
        (0..t_f)
            .map(|h| (0..n).map(|j| (pv.at2(h, j) as f64 * means[j]).max(0.0)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::evaluate;

    #[test]
    fn lstm_trains_and_predicts() {
        let full = RateSeries::bustracker_hot(120, 0.05, 3);
        let (train, _) = full.split(90);
        let cfg = LstmConfig {
            hidden: 8,
            epochs: 25,
            steps_per_epoch: 8,
            max_horizon: 5,
            t_in: 12,
            ..Default::default()
        };
        let lstm = Lstm::fit(&train, cfg);
        let e = evaluate(&lstm, &full, 90, 5);
        assert!(e.is_finite());
        assert!(e < 0.8, "LSTM MAPE {e} should be sane");
        let pred = lstm.forecast(&full.values[..20], 5);
        assert_eq!(pred.len(), 5);
        assert_eq!(pred[0].len(), 14);
        assert!(pred.iter().flatten().all(|v| v.is_finite() && *v >= 0.0));
    }
}
