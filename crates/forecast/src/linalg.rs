//! Tiny dense linear algebra: ridge-regularized least squares via
//! Gaussian elimination, for the LR and ARIMA baselines.

/// Solves `A x = b` for square `A` (row-major, `n x n`) by Gaussian
/// elimination with partial pivoting. Returns `None` if singular.
pub fn solve(mut a: Vec<f64>, mut b: Vec<f64>, n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n);
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[pivot * n + col].abs() {
                pivot = r;
            }
        }
        if a[pivot * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for c in 0..n {
                a.swap(col * n + c, pivot * n + c);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        for r in col + 1..n {
            let factor = a[r * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= factor * a[col * n + c];
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in row + 1..n {
            acc -= a[row * n + c] * x[c];
        }
        x[row] = acc / a[row * n + row];
    }
    Some(x)
}

/// Ridge regression: given samples `xs[i]` (feature vectors, length `d`)
/// and scalar targets `ys[i]`, returns weights `w` (length `d + 1`, last
/// element the intercept) minimizing `Σ (w·x + b - y)² + λ‖w‖²`.
pub fn ridge_fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Option<Vec<f64>> {
    assert_eq!(xs.len(), ys.len());
    let n = xs.first()?.len() + 1; // + intercept
    let mut xtx = vec![0.0f64; n * n];
    let mut xty = vec![0.0f64; n];
    for (x, y) in xs.iter().zip(ys) {
        let aug: Vec<f64> = x.iter().copied().chain(std::iter::once(1.0)).collect();
        for i in 0..n {
            for j in 0..n {
                xtx[i * n + j] += aug[i] * aug[j];
            }
            xty[i] += aug[i] * y;
        }
    }
    for i in 0..n - 1 {
        xtx[i * n + i] += lambda; // do not regularize the intercept
    }
    solve(xtx, xty, n)
}

/// Applies ridge weights to a feature vector.
pub fn ridge_predict(w: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(w.len(), x.len() + 1);
    x.iter().zip(w).map(|(xi, wi)| xi * wi).sum::<f64>() + w[w.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_systems() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
        let x = solve(vec![2.0, 1.0, 1.0, -1.0], vec![5.0, 1.0], 2).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn singular_systems_return_none() {
        assert!(solve(vec![1.0, 2.0, 2.0, 4.0], vec![1.0, 2.0], 2).is_none());
    }

    #[test]
    fn ridge_recovers_linear_relationship() {
        // y = 3 x0 - 2 x1 + 5.
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 7) as f64, (i % 5) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 2.0 * x[1] + 5.0).collect();
        let w = ridge_fit(&xs, &ys, 1e-9).unwrap();
        assert!((w[0] - 3.0).abs() < 1e-6, "{w:?}");
        assert!((w[1] + 2.0).abs() < 1e-6);
        assert!((w[2] - 5.0).abs() < 1e-6);
        let pred = ridge_predict(&w, &[2.0, 1.0]);
        assert!((pred - 9.0).abs() < 1e-6);
    }
}
