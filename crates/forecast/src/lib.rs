//! Table-access-rate forecasting for AETS (Section IV-A of the paper).
//!
//! The adaptive thread allocator weighs groups by predicted access rates;
//! this crate provides the predictor — [`dtgm::Dtgm`], a deep temporal
//! graph model (gated dilated TCN + GCN with residual/skip connections) —
//! and the baselines of Table III: historical average, ARIMA, and the
//! QB5000 LR/LSTM/KR ensemble. [`series::evaluate`] computes rolling
//! MAPE at the paper's 15/30/60-slot horizons.

// The forecaster feeds the live control loop: a panic here would take
// down the controller thread mid-replay, so fallible paths must return
// typed errors (matching the discipline in aets-replay and
// aets-telemetry).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod adaptive;
pub mod baselines;
pub mod dtgm;
pub mod linalg;
pub mod lstm;
pub mod qb5000;
pub mod series;

pub use adaptive::{ForecastModel, RateTracker};
pub use baselines::{Arima, Ha, KernelRegression, LinearRegression};
pub use dtgm::{adjacency_powers, Dtgm, DtgmConfig};
pub use lstm::{Lstm, LstmConfig};
pub use qb5000::Qb5000;
pub use series::{evaluate, mape, Forecaster, RateSeries};
