//! DTGM — the Deep Temporal Graph Model of Section IV-A.
//!
//! Graph-WaveNet-style architecture (the paper cites Wu et al.'s Graph WaveNet):
//! stacked layers of a gated dilated temporal convolution
//! (`tanh(Θ₁*H+b₁) ⊙ σ(Θ₂*H+b₂)`) followed by a graph convolution over
//! the table-access graph (`Z = Σ_k C^k H W`), with residual and skip
//! connections, dropout, MAE loss, Adam with step decay — all matching
//! the paper's training setup (hidden 48, batch-of-windows, lr 1e-3,
//! decay 0.1 / 20 epochs, L2 1e-5, dropout 0.3).
//!
//! The `use_gcn: false` variant (adjacency powers reduced to the identity)
//! is the paper's Table IV ablation.

use crate::series::{Forecaster, RateSeries};
use aets_common::rng::seeded_rng;
use aets_common::{Error, Result};
use aets_neural::{Adam, Tape, Tensor, Var};
use rand::seq::SliceRandom;
use rand::Rng;
use std::rc::Rc;

/// DTGM hyper-parameters.
#[derive(Debug, Clone)]
pub struct DtgmConfig {
    /// Hidden layer dimension (paper optimum: 48).
    pub hidden: usize,
    /// Number of gated-TCN + GCN layers (dilations 1, 2, 4, ...).
    pub layers: usize,
    /// Adjacency powers (K in `Σ_{k=0}^{K} C^k H W`).
    pub k_hops: usize,
    /// Include the GCN component (Table IV ablation switch).
    pub use_gcn: bool,
    /// Input window length.
    pub t_in: usize,
    /// Maximum forecast horizon (direct multi-output head).
    pub max_horizon: usize,
    /// Dropout probability (paper: 0.3).
    pub dropout: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Windows sampled per epoch (the paper's batch size 64 corresponds
    /// to a full pass; a sampled batch keeps CPU training fast).
    pub steps_per_epoch: usize,
    /// Initial learning rate (paper: 1e-3).
    pub lr: f32,
    /// L2 penalty (paper: 1e-5).
    pub weight_decay: f32,
    /// Learning-rate decay applied every `decay_every` epochs (paper:
    /// 0.1 every 20).
    pub lr_decay: f32,
    /// Epochs between decays.
    pub decay_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DtgmConfig {
    fn default() -> Self {
        Self {
            hidden: 48,
            layers: 2,
            k_hops: 2,
            use_gcn: true,
            t_in: 12,
            max_horizon: 15,
            dropout: 0.3,
            epochs: 40,
            steps_per_epoch: 8,
            lr: 1e-3,
            weight_decay: 1e-5,
            lr_decay: 0.1,
            decay_every: 20,
            seed: 7,
        }
    }
}

/// Builds the normalized adjacency powers `[I, Â, Â², ...]` for the
/// table-access graph (`edges` are undirected co-access pairs).
pub fn adjacency_powers(n: usize, edges: &[(usize, usize)], k_hops: usize) -> Rc<Vec<Tensor>> {
    let mut a = Tensor::zeros(&[n, n]);
    for &(i, j) in edges {
        assert!(i < n && j < n, "edge out of range");
        a.data_mut()[i * n + j] = 1.0;
        a.data_mut()[j * n + i] = 1.0;
    }
    // Self loops + row normalization (random-walk normalization).
    for i in 0..n {
        a.data_mut()[i * n + i] = 1.0;
    }
    for i in 0..n {
        let row_sum: f32 = (0..n).map(|j| a.at2(i, j)).sum();
        for j in 0..n {
            a.data_mut()[i * n + j] /= row_sum;
        }
    }
    let mut ident = Tensor::zeros(&[n, n]);
    for i in 0..n {
        ident.data_mut()[i * n + i] = 1.0;
    }
    let mut pows = vec![ident];
    let mut cur = a.clone();
    for _ in 0..k_hops {
        pows.push(cur.clone());
        cur = cur.matmul(&a);
    }
    Rc::new(pows)
}

/// Input channels: normalized rate + day-phase sine + cosine (Graph
/// WaveNet feeds time-of-day features the same way).
const IN_CHANNELS: usize = 3;

fn phase_channels(slot: usize) -> (f32, f32) {
    let day = aets_workloads::bustracker::DAY_SLOTS as f64;
    let ang =
        2.0 * std::f64::consts::PI * ((slot % aets_workloads::bustracker::DAY_SLOTS) as f64) / day;
    (ang.sin() as f32, ang.cos() as f32)
}

// Parameter layout indices.
struct Layout {
    proj_w: usize,
    // per layer: filt_w, filt_b, gate_w, gate_b, mix_w
    layer_base: usize,
    per_layer: usize,
    out_w: usize,
    out_b: usize,
}

/// The trained DTGM forecaster.
pub struct Dtgm {
    cfg: DtgmConfig,
    adj: Rc<Vec<Tensor>>,
    params: Vec<Tensor>,
    layout: Layout,
    /// Per-table normalization scale (training-split mean).
    scale: Vec<f64>,
    /// Final training loss (normalized MAE), for diagnostics.
    pub final_loss: f32,
}

impl Dtgm {
    fn build_params(
        cfg: &DtgmConfig,
        rng: &mut rand::rngs::StdRng,
        hops: usize,
    ) -> (Vec<Tensor>, Layout) {
        let h = cfg.hidden;
        let mut params = Vec::new();
        let init = |rng: &mut rand::rngs::StdRng, shape: &[usize]| {
            let fan_in = shape.iter().skip(1).product::<usize>().max(1) as f32;
            Tensor::rand_uniform(rng, shape, 1.0 / fan_in.sqrt())
        };
        params.push(init(rng, &[h, IN_CHANNELS, 1])); // proj_w
        let layer_base = params.len();
        for _ in 0..cfg.layers {
            params.push(init(rng, &[h, h, 2])); // filt_w
            params.push(Tensor::zeros(&[h])); // filt_b
            params.push(init(rng, &[h, h, 2])); // gate_w
            params.push(Tensor::zeros(&[h])); // gate_b
            params.push(init(rng, &[hops * h, h])); // mix_w
        }
        let out_w = params.len();
        params.push(init(rng, &[cfg.max_horizon, h]));
        let out_b = params.len();
        params.push(Tensor::zeros(&[cfg.max_horizon]));
        let layout = Layout { proj_w: 0, layer_base, per_layer: 5, out_w, out_b };
        (params, layout)
    }

    /// Forward pass. `x` is `[1, N, t_in]` normalized; returns
    /// `[max_horizon, N]`. `dropout_masks`: one mask per layer (training
    /// only).
    fn forward(
        &self,
        tape: &mut Tape,
        pvars: &[Var],
        x: Var,
        dropout_masks: Option<&[Tensor]>,
    ) -> Var {
        let l = &self.layout;
        let mut h = tape.conv1d(x, pvars[l.proj_w], 1);
        let mut skip: Option<Var> = None;
        for li in 0..self.cfg.layers {
            let base = l.layer_base + li * l.per_layer;
            let dilation = 1usize << li;
            let f_pre = tape.conv1d(h, pvars[base], dilation);
            let f_pre = tape.add_bias(f_pre, pvars[base + 1]);
            let f = tape.tanh(f_pre);
            let g_pre = tape.conv1d(h, pvars[base + 2], dilation);
            let g_pre = tape.add_bias(g_pre, pvars[base + 3]);
            let g = tape.sigmoid(g_pre);
            let mut z = tape.mul(f, g);
            if let Some(masks) = dropout_masks {
                z = tape.mask_mul(z, masks[li].clone());
            }
            let mixed = tape.gcn_mix(z, pvars[base + 4], self.adj.clone());
            h = tape.add(h, mixed); // residual
            skip = Some(match skip {
                Some(s) => tape.add(s, mixed),
                None => mixed,
            });
        }
        let s = skip.expect("at least one layer");
        let s = tape.relu(s);
        let last = tape.slice_last_time(s);
        let y = tape.matmul(pvars[l.out_w], last);
        tape.add_bias(y, pvars[l.out_b])
    }

    /// Trains DTGM on a series with the given access graph. Fails when
    /// the training series is too short to cut a single
    /// `t_in + max_horizon` window.
    pub fn fit(train: &RateSeries, edges: &[(usize, usize)], cfg: DtgmConfig) -> Result<Self> {
        let n = train.width();
        let hops = if cfg.use_gcn { cfg.k_hops + 1 } else { 1 };
        let adj = if cfg.use_gcn {
            adjacency_powers(n, edges, cfg.k_hops)
        } else {
            adjacency_powers(n, &[], 0) // identity only: "w/o gcn"
        };
        let mut rng = seeded_rng(cfg.seed);
        let (params, layout) = Self::build_params(&cfg, &mut rng, hops);
        let shapes: Vec<Vec<usize>> = params.iter().map(|p| p.shape().to_vec()).collect();
        let shape_refs: Vec<&[usize]> = shapes.iter().map(|s| s.as_slice()).collect();
        let mut opt = Adam::new(&shape_refs, cfg.lr, cfg.weight_decay);
        // Per-table scale: tables' popularity spans orders of magnitude,
        // so a global scale would let the largest table dominate the loss.
        let scale: Vec<f64> = (0..n)
            .map(|j| {
                (train.values.iter().map(|r| r[j]).sum::<f64>() / train.len() as f64).max(1e-6)
            })
            .collect();
        let mut model = Self { cfg, adj, params, layout, scale, final_loss: f32::NAN };

        let windows = train.windows(model.cfg.t_in, model.cfg.max_horizon);
        if windows.is_empty() {
            return Err(Error::Config(format!(
                "training series of {} slots is too short for DTGM (needs t_in {} + horizon {})",
                train.len(),
                model.cfg.t_in,
                model.cfg.max_horizon
            )));
        }
        let mut order: Vec<usize> = (0..windows.len()).collect();
        for epoch in 0..model.cfg.epochs {
            if epoch > 0 && epoch % model.cfg.decay_every == 0 {
                opt.decay_lr(model.cfg.lr_decay);
            }
            order.shuffle(&mut rng);
            for &wi in order.iter().take(model.cfg.steps_per_epoch) {
                let (input, target) = &windows[wi];
                let mut tape = Tape::new();
                let pvars: Vec<Var> = model.params.iter().map(|p| tape.leaf(p.clone())).collect();
                let x = input_tensor(input, n, model.cfg.t_in, wi, &model.scale);
                let x = tape.leaf(x);
                // Inverted dropout masks per layer.
                let keep = 1.0 - model.cfg.dropout;
                let masks: Vec<Tensor> = (0..model.cfg.layers)
                    .map(|_| {
                        let len = model.cfg.hidden * n * model.cfg.t_in;
                        Tensor::new(
                            &[model.cfg.hidden, n, model.cfg.t_in],
                            (0..len)
                                .map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
                                .collect(),
                        )
                    })
                    .collect();
                let pred = model.forward(&mut tape, &pvars, x, Some(&masks));
                let tdata: Vec<f32> = target
                    .iter()
                    .flat_map(|row| {
                        row.iter().enumerate().map(|(j, v)| (*v / model.scale[j]) as f32)
                    })
                    .collect();
                let loss = tape.mae_loss(pred, Tensor::new(&[model.cfg.max_horizon, n], tdata));
                model.final_loss = tape.value(loss).item();
                let grads = tape.backward(loss);
                let grad_refs: Vec<Option<&Tensor>> = pvars.iter().map(|v| grads.get(*v)).collect();
                opt.step(&mut model.params, &grad_refs);
            }
        }
        Ok(model)
    }
}

/// Builds the `[IN_CHANNELS, N, t_in]` input block: normalized rates in
/// channel 0, day-phase sine/cosine of each slot in channels 1-2.
/// `window_start` is the absolute slot index of the window's first row.
fn input_tensor(
    window: &[Vec<f64>],
    n: usize,
    t_in: usize,
    window_start: usize,
    scale: &[f64],
) -> Tensor {
    assert_eq!(window.len(), t_in, "window length mismatch");
    let mut data = vec![0.0f32; IN_CHANNELS * n * t_in];
    for j in 0..n {
        for (ti, row) in window.iter().enumerate() {
            let (sin_p, cos_p) = phase_channels(window_start + ti);
            data[(j) * t_in + ti] = (row[j] / scale[j]) as f32;
            data[(n + j) * t_in + ti] = sin_p;
            data[(2 * n + j) * t_in + ti] = cos_p;
        }
    }
    Tensor::new(&[IN_CHANNELS, n, t_in], data)
}

impl Forecaster for Dtgm {
    fn name(&self) -> &'static str {
        if self.cfg.use_gcn {
            "DTGM"
        } else {
            "DTGM w/o gcn"
        }
    }

    fn forecast(&self, history: &[Vec<f64>], t_f: usize) -> Vec<Vec<f64>> {
        let n = history.last().map_or(0, Vec::len);
        let t_f = t_f.min(self.cfg.max_horizon);
        let window: Vec<Vec<f64>> = {
            let mut w = history[history.len().saturating_sub(self.cfg.t_in)..].to_vec();
            while w.len() < self.cfg.t_in {
                w.insert(0, w.first().expect("non-empty history").clone());
            }
            w
        };
        let mut tape = Tape::new();
        let pvars: Vec<Var> = self.params.iter().map(|p| tape.leaf(p.clone())).collect();
        let window_start = history.len().saturating_sub(self.cfg.t_in);
        let x = input_tensor(&window, n, self.cfg.t_in, window_start, &self.scale);
        let x = tape.leaf(x);
        let pred = self.forward(&mut tape, &pvars, x, None);
        let pv = tape.value(pred);
        (0..t_f)
            .map(|h| (0..n).map(|j| (pv.at2(h, j) as f64 * self.scale[j]).max(0.0)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::evaluate;
    use aets_workloads::bustracker;

    fn small_cfg() -> DtgmConfig {
        DtgmConfig {
            hidden: 12,
            layers: 2,
            epochs: 80,
            steps_per_epoch: 12,
            max_horizon: 5,
            t_in: 12,
            dropout: 0.1,
            lr: 5e-3,
            decay_every: 40,
            ..Default::default()
        }
    }

    #[test]
    fn adjacency_powers_are_row_stochastic() {
        let adj = adjacency_powers(4, &[(0, 1), (1, 2)], 2);
        assert_eq!(adj.len(), 3);
        // A^0 = I.
        assert_eq!(adj[0].at2(2, 2), 1.0);
        assert_eq!(adj[0].at2(0, 1), 0.0);
        for a in adj.iter().skip(1) {
            for i in 0..4 {
                let row: f32 = (0..4).map(|j| a.at2(i, j)).sum();
                assert!((row - 1.0).abs() < 1e-5, "row {i} sums to {row}");
            }
        }
    }

    #[test]
    fn dtgm_learns_the_series() {
        let full = RateSeries::bustracker_hot(120, 0.05, 5);
        let (train, _) = full.split(90);
        let model = Dtgm::fit(&train, &bustracker::access_graph(), small_cfg()).unwrap();
        assert!(model.final_loss.is_finite());
        let e = evaluate(&model, &full, 90, 5);
        // A trained DTGM must do clearly better than predicting the mean.
        let ha = crate::baselines::Ha { window: 60 };
        let e_ha = evaluate(&ha, &full, 90, 5);
        assert!(e < e_ha, "DTGM {e} should beat HA {e_ha}");
        assert!(e < 0.35, "DTGM MAPE {e}");
    }

    #[test]
    fn ablation_variant_runs() {
        let full = RateSeries::bustracker_hot(100, 0.05, 9);
        let (train, _) = full.split(80);
        let cfg = DtgmConfig { use_gcn: false, epochs: 10, ..small_cfg() };
        let model = Dtgm::fit(&train, &bustracker::access_graph(), cfg).unwrap();
        assert_eq!(model.name(), "DTGM w/o gcn");
        let e = evaluate(&model, &full, 80, 5);
        assert!(e.is_finite());
    }

    #[test]
    fn forecast_shape_and_positivity() {
        let full = RateSeries::bustracker_hot(100, 0.05, 5);
        let (train, _) = full.split(80);
        let model = Dtgm::fit(&train, &bustracker::access_graph(), small_cfg()).unwrap();
        let pred = model.forecast(&full.values[..10], 5);
        assert_eq!(pred.len(), 5);
        assert_eq!(pred[0].len(), 14);
        assert!(pred.iter().flatten().all(|v| *v >= 0.0 && v.is_finite()));
    }
}
