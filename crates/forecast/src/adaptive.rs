//! Streaming adaptation support for the live control loop.
//!
//! The replay-side controller (`aets-replay`'s `control` module) samples
//! the telemetry registry's cumulative per-table access counters once
//! per epoch window. This module turns those samples into the
//! forecaster's inputs and back into a next-window prediction:
//!
//! * [`RateTracker`] — diffs cumulative counter samples into per-window
//!   access *rates* and keeps a bounded history of them;
//! * [`ForecastModel`] — the online model choice. The heavyweight
//!   [`crate::Dtgm`] needs a training pass and is fit offline; the
//!   online loop defaults to the historical average, which Table III
//!   shows is already competitive at short horizons and costs
//!   microseconds per window.

use crate::baselines::Ha;
use crate::series::Forecaster;
use aets_common::{Error, Result};
use std::collections::VecDeque;
use std::time::Duration;

/// The online forecasting model driving the control loop.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastModel {
    /// Historical average of the last `window` observed windows
    /// (Table III's HA baseline; the default).
    Ha {
        /// Number of trailing windows averaged.
        window: usize,
    },
    /// Last observation carried forward — the cheapest possible model,
    /// useful as an ablation of the forecasting component.
    Naive,
}

impl Default for ForecastModel {
    fn default() -> Self {
        Self::Ha { window: 8 }
    }
}

impl ForecastModel {
    /// Predicts the next window's per-table rates from `history` (rows =
    /// windows, columns = tables; newest row last). Fails on an empty
    /// history — the caller should keep the current plan until it has
    /// observed at least one full window.
    pub fn forecast_next(&self, history: &[Vec<f64>]) -> Result<Vec<f64>> {
        let last = history
            .last()
            .ok_or_else(|| Error::Config("forecast requested with no rate history".into()))?;
        match self {
            Self::Ha { window } => {
                let ha = Ha { window: (*window).max(1) };
                let mut rows = ha.forecast(history, 1);
                rows.pop().ok_or_else(|| Error::Replay("HA returned no forecast rows".into()))
            }
            Self::Naive => Ok(last.clone()),
        }
    }

    /// Name for telemetry and result files.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Ha { .. } => "ha",
            Self::Naive => "naive",
        }
    }
}

/// Diffs cumulative per-table access counters into per-window rates.
///
/// The telemetry registry exposes *monotone totals* (e.g.
/// `aets_table_access_total{table="3"}`); the controller samples them
/// once per epoch window and feeds each sample here. The tracker
/// subtracts the previous sample and divides by the window's wall time,
/// yielding the access-rate rows the forecaster consumes.
#[derive(Debug)]
pub struct RateTracker {
    num_tables: usize,
    max_history: usize,
    prev: Option<Vec<u64>>,
    history: VecDeque<Vec<f64>>,
}

impl RateTracker {
    /// A tracker over `num_tables` tables keeping at most `max_history`
    /// rate windows (the forecaster never needs more than its input
    /// window; bounding it keeps the controller allocation-free in
    /// steady state).
    pub fn new(num_tables: usize, max_history: usize) -> Self {
        Self { num_tables, max_history: max_history.max(1), prev: None, history: VecDeque::new() }
    }

    /// Feeds one sample of the cumulative counters, taken `elapsed`
    /// after the previous one. Returns the rate row this window produced
    /// (`None` for the first sample, which only establishes the
    /// baseline). Counter regressions (an engine restart zeroed the
    /// registry) clamp to zero instead of going negative.
    pub fn observe(&mut self, cumulative: &[u64], elapsed: Duration) -> Result<Option<Vec<f64>>> {
        if cumulative.len() != self.num_tables {
            return Err(Error::Config(format!(
                "sampled {} table counters, tracker expects {}",
                cumulative.len(),
                self.num_tables
            )));
        }
        let prev = match self.prev.replace(cumulative.to_vec()) {
            Some(p) => p,
            None => return Ok(None),
        };
        let secs = elapsed.as_secs_f64().max(1e-9);
        let rates: Vec<f64> = cumulative
            .iter()
            .zip(&prev)
            .map(|(now, before)| now.saturating_sub(*before) as f64 / secs)
            .collect();
        if self.history.len() == self.max_history {
            self.history.pop_front();
        }
        self.history.push_back(rates.clone());
        Ok(Some(rates))
    }

    /// The observed rate windows, oldest first.
    pub fn history(&self) -> Vec<Vec<f64>> {
        self.history.iter().cloned().collect()
    }

    /// Number of complete windows observed so far.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether no complete window has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Predicts the next window's per-table rates with `model`, or
    /// `None` until at least one window is complete.
    pub fn forecast(&self, model: &ForecastModel) -> Result<Option<Vec<f64>>> {
        if self.history.is_empty() {
            return Ok(None);
        }
        let history: Vec<Vec<f64>> = self.history.iter().cloned().collect();
        model.forecast_next(&history).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_diffs_cumulative_samples_into_rates() {
        let mut t = RateTracker::new(2, 8);
        let w = Duration::from_secs(2);
        assert!(t.observe(&[100, 50], w).unwrap().is_none(), "first sample is the baseline");
        let r = t.observe(&[140, 50], w).unwrap().unwrap();
        assert_eq!(r, vec![20.0, 0.0]);
        let r = t.observe(&[140, 60], w).unwrap().unwrap();
        assert_eq!(r, vec![0.0, 5.0]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn tracker_clamps_counter_regressions() {
        let mut t = RateTracker::new(1, 4);
        t.observe(&[500], Duration::from_secs(1)).unwrap();
        let r = t.observe(&[10], Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(r, vec![0.0], "registry reset must not produce a negative rate");
    }

    #[test]
    fn tracker_bounds_history_and_rejects_bad_arity() {
        let mut t = RateTracker::new(1, 2);
        for i in 0..5u64 {
            t.observe(&[i * 10], Duration::from_secs(1)).unwrap();
        }
        assert_eq!(t.len(), 2);
        assert!(t.observe(&[1, 2], Duration::from_secs(1)).is_err());
    }

    #[test]
    fn models_forecast_next_window() {
        let history = vec![vec![10.0, 0.0], vec![20.0, 2.0]];
        let naive = ForecastModel::Naive.forecast_next(&history).unwrap();
        assert_eq!(naive, vec![20.0, 2.0]);
        let ha = ForecastModel::Ha { window: 2 }.forecast_next(&history).unwrap();
        assert_eq!(ha, vec![15.0, 1.0]);
        assert!(ForecastModel::default().forecast_next(&[]).is_err());
    }

    #[test]
    fn tracker_forecast_waits_for_first_window() {
        let mut t = RateTracker::new(1, 4);
        assert!(t.forecast(&ForecastModel::Naive).unwrap().is_none());
        t.observe(&[0], Duration::from_secs(1)).unwrap();
        assert!(t.forecast(&ForecastModel::Naive).unwrap().is_none());
        t.observe(&[30], Duration::from_secs(1)).unwrap();
        assert_eq!(t.forecast(&ForecastModel::Naive).unwrap().unwrap(), vec![30.0]);
    }
}
