//! QB5000 baseline (Ma et al., SIGMOD'18): forecasts by equally
//! averaging linear regression, LSTM, and kernel regression.

use crate::baselines::{KernelRegression, LinearRegression};
use crate::lstm::{Lstm, LstmConfig};
use crate::series::{Forecaster, RateSeries};

/// The three-model ensemble.
pub struct Qb5000 {
    lr: LinearRegression,
    lstm: Lstm,
    kr: KernelRegression,
}

impl Qb5000 {
    /// Trains all three members on the training series.
    pub fn fit(train: &RateSeries, t_in: usize, max_horizon: usize, seed: u64) -> Self {
        let lr = LinearRegression::fit(train, t_in, max_horizon);
        let lstm = Lstm::fit(train, LstmConfig { t_in, max_horizon, seed, ..Default::default() });
        let kr = KernelRegression::fit(train, t_in, max_horizon, 0.5);
        Self { lr, lstm, kr }
    }
}

impl Forecaster for Qb5000 {
    fn name(&self) -> &'static str {
        "QB5000"
    }

    fn forecast(&self, history: &[Vec<f64>], t_f: usize) -> Vec<Vec<f64>> {
        let a = self.lr.forecast(history, t_f);
        let b = self.lstm.forecast(history, t_f);
        let c = self.kr.forecast(history, t_f);
        a.iter()
            .zip(&b)
            .zip(&c)
            .map(|((ra, rb), rc)| {
                ra.iter().zip(rb).zip(rc).map(|((x, y), z)| (x + y + z) / 3.0).collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Ha;
    use crate::series::evaluate;

    #[test]
    fn ensemble_beats_historical_average() {
        let full = RateSeries::bustracker_hot(140, 0.05, 13);
        let (train, _) = full.split(110);
        let qb = Qb5000::fit(&train, 12, 5, 13);
        let e_qb = evaluate(&qb, &full, 110, 5);
        let e_ha = evaluate(&Ha { window: 60 }, &full, 110, 5);
        assert!(e_qb < e_ha, "QB5000 {e_qb} should beat HA {e_ha}");
    }

    #[test]
    fn ensemble_output_shape() {
        let full = RateSeries::bustracker_hot(120, 0.05, 17);
        let (train, _) = full.split(100);
        let qb = Qb5000::fit(&train, 12, 5, 17);
        let pred = qb.forecast(&full.values[..30], 5);
        assert_eq!(pred.len(), 5);
        assert_eq!(pred[0].len(), 14);
    }
}
