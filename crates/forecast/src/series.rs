//! Access-rate time series: generation, windowing, and MAPE evaluation.

use aets_common::rng::seeded_rng;
use rand::Rng;

/// A multivariate time series: `values[t][n]` is the access rate of table
/// `n` in slot `t`.
#[derive(Debug, Clone)]
pub struct RateSeries {
    /// Row-per-slot rate matrix.
    pub values: Vec<Vec<f64>>,
}

impl RateSeries {
    /// Wraps a rate matrix. All rows must have equal length.
    pub fn new(values: Vec<Vec<f64>>) -> Self {
        if let Some(first) = values.first() {
            assert!(values.iter().all(|r| r.len() == first.len()), "ragged rate matrix");
        }
        Self { values }
    }

    /// Number of time slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of tables (series dimensionality).
    pub fn width(&self) -> usize {
        self.values.first().map_or(0, Vec::len)
    }

    /// The noisy BusTracker hot-table series used throughout the
    /// forecasting experiments: ground-truth rate model plus
    /// multiplicative noise.
    pub fn bustracker_hot(slots: usize, noise: f64, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        let values = (0..slots)
            .map(|s| {
                (0..aets_workloads::bustracker::NUM_HOT)
                    .map(|t| {
                        let base = aets_workloads::bustracker::access_rate(t, s);
                        let eps: f64 = rng.gen_range(-1.0..1.0);
                        (base * (1.0 + noise * eps)).max(0.1)
                    })
                    .collect()
            })
            .collect();
        Self::new(values)
    }

    /// Splits into `(train, test)` at `at`.
    pub fn split(&self, at: usize) -> (RateSeries, RateSeries) {
        assert!(at <= self.len(), "split point out of range");
        (RateSeries::new(self.values[..at].to_vec()), RateSeries::new(self.values[at..].to_vec()))
    }

    /// Maximum value (for normalization); at least 1.
    pub fn max_value(&self) -> f64 {
        self.values.iter().flatten().fold(1.0f64, |m, v| m.max(*v))
    }

    /// Sliding windows `(input, target)` where the input covers
    /// `t_in` slots and the target the following `t_f` slots.
    #[allow(clippy::type_complexity)]
    pub fn windows(&self, t_in: usize, t_f: usize) -> Vec<(Window, Window)> {
        let mut out = Vec::new();
        if self.len() < t_in + t_f {
            return out;
        }
        for start in 0..=(self.len() - t_in - t_f) {
            let input = self.values[start..start + t_in].to_vec();
            let target = self.values[start + t_in..start + t_in + t_f].to_vec();
            out.push((input, target));
        }
        out
    }
}

/// A block of rate rows (`[t][n]`), used for window inputs/targets.
pub type Window = Vec<Vec<f64>>;

/// Mean absolute percentage error between prediction and truth
/// (`[t_f][n]` each), skipping near-zero truths.
pub fn mape(pred: &[Vec<f64>], truth: &[Vec<f64>]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "horizon mismatch");
    let mut sum = 0.0;
    let mut count = 0usize;
    for (p_row, t_row) in pred.iter().zip(truth) {
        assert_eq!(p_row.len(), t_row.len(), "width mismatch");
        for (p, t) in p_row.iter().zip(t_row) {
            if t.abs() > 1e-9 {
                sum += ((p - t) / t).abs();
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// A forecaster of table access rates.
pub trait Forecaster {
    /// Name used in Table III.
    fn name(&self) -> &'static str;

    /// Predicts the next `t_f` slots from the trailing history
    /// (`history[t][n]`, most recent last).
    fn forecast(&self, history: &[Vec<f64>], t_f: usize) -> Vec<Vec<f64>>;
}

/// Evaluates a forecaster over a test series with rolling-origin
/// evaluation: at every origin `t >= min_history`, the forecaster sees
/// the full history `series[..t]` (each model slices the lookback it
/// needs — HA its 60-slot window, ARIMA its lag order, DTGM its input
/// window) and is scored on the next `t_f` slots. Returns mean MAPE.
pub fn evaluate(f: &dyn Forecaster, series: &RateSeries, min_history: usize, t_f: usize) -> f64 {
    assert!(series.len() > min_history + t_f, "series too short for evaluation");
    let mut total = 0.0;
    let mut count = 0usize;
    for t in min_history..=series.len() - t_f {
        let history = series.values[..t].to_vec();
        let target = series.values[t..t + t_f].to_vec();
        let pred = f.forecast(&history, t_f);
        total += mape(&pred, &target);
        count += 1;
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_shape_and_split() {
        let s = RateSeries::bustracker_hot(50, 0.1, 1);
        assert_eq!(s.len(), 50);
        assert_eq!(s.width(), 14);
        let (a, b) = s.split(30);
        assert_eq!(a.len(), 30);
        assert_eq!(b.len(), 20);
        assert!(s.max_value() > 1.0);
    }

    #[test]
    fn windows_cover_series() {
        let s = RateSeries::new((0..10).map(|t| vec![t as f64]).collect());
        let w = s.windows(3, 2);
        assert_eq!(w.len(), 6);
        assert_eq!(w[0].0, vec![vec![0.0], vec![1.0], vec![2.0]]);
        assert_eq!(w[0].1, vec![vec![3.0], vec![4.0]]);
        assert!(s.windows(8, 3).is_empty());
    }

    #[test]
    fn mape_basics() {
        let truth = vec![vec![10.0, 20.0]];
        let exact = mape(&truth.clone(), &truth);
        assert_eq!(exact, 0.0);
        let pred = vec![vec![11.0, 18.0]];
        let e = mape(&pred, &truth);
        assert!((e - 0.1).abs() < 1e-12); // (0.1 + 0.1)/2
    }

    #[test]
    fn mape_skips_zero_truth() {
        let pred = vec![vec![5.0, 5.0]];
        let truth = vec![vec![0.0, 10.0]];
        assert!((mape(&pred, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn noise_is_seeded() {
        let a = RateSeries::bustracker_hot(20, 0.2, 7);
        let b = RateSeries::bustracker_hot(20, 0.2, 7);
        assert_eq!(a.values, b.values);
        let c = RateSeries::bustracker_hot(20, 0.2, 8);
        assert_ne!(a.values, c.values);
    }
}
