//! Forecasting baselines of Table III: HA, ARIMA, and the LR / kernel-
//! regression members of the QB5000 ensemble.
#![allow(clippy::needless_range_loop)] // index loops mirror the math

use crate::linalg::{ridge_fit, ridge_predict};
use crate::series::{Forecaster, RateSeries};

/// Historical average: predicts the mean of the trailing `window` slots
/// for every future step. Horizon-independent by construction, which is
/// why the paper reports the same HA error at 15/30/60 minutes.
#[derive(Debug, Clone)]
pub struct Ha {
    /// Trailing window length (paper: last 60 minutes).
    pub window: usize,
}

impl Default for Ha {
    fn default() -> Self {
        Self { window: 60 }
    }
}

impl Forecaster for Ha {
    fn name(&self) -> &'static str {
        "HA"
    }

    fn forecast(&self, history: &[Vec<f64>], t_f: usize) -> Vec<Vec<f64>> {
        let n = history.last().map_or(0, Vec::len);
        let lookback = history.len().min(self.window);
        let tail = &history[history.len() - lookback..];
        let means: Vec<f64> =
            (0..n).map(|j| tail.iter().map(|r| r[j]).sum::<f64>() / lookback as f64).collect();
        (0..t_f).map(|_| means.clone()).collect()
    }
}

/// Seasonal ARIMA (the Williams-Hoel formulation the paper cites models
/// traffic as a *seasonal* ARIMA process): the series is differenced at
/// the daily period, an AR(p) is fit per table on the seasonal
/// differences, and forecasts add the predicted difference back onto the
/// value one season ago.
#[derive(Debug, Clone)]
pub struct Arima {
    p: usize,
    season: usize,
    /// Per-table AR coefficients (plus intercept as the last element).
    coeffs: Vec<Vec<f64>>,
}

impl Arima {
    /// Fits per-table seasonal-AR(p) models on the training series with
    /// the standard daily period.
    pub fn fit(train: &RateSeries, p: usize) -> Self {
        Self::fit_seasonal(train, p, aets_workloads::bustracker::DAY_SLOTS)
    }

    /// Fits with an explicit seasonal period.
    pub fn fit_seasonal(train: &RateSeries, p: usize, season: usize) -> Self {
        assert!(p >= 1, "AR order must be >= 1");
        assert!(season >= 1, "season must be >= 1");
        assert!(train.len() > season + p + 2, "training series too short");
        let n = train.width();
        let mut coeffs = Vec::with_capacity(n);
        for j in 0..n {
            let series: Vec<f64> = train.values.iter().map(|r| r[j]).collect();
            let diffs: Vec<f64> =
                (season..series.len()).map(|t| series[t] - series[t - season]).collect();
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for t in p..diffs.len() {
                xs.push(diffs[t - p..t].to_vec());
                ys.push(diffs[t]);
            }
            let w = ridge_fit(&xs, &ys, 1e-6).unwrap_or_else(|| vec![0.0; p + 1]);
            coeffs.push(w);
        }
        Self { p, season, coeffs }
    }
}

impl Forecaster for Arima {
    fn name(&self) -> &'static str {
        "ARIMA"
    }

    fn forecast(&self, history: &[Vec<f64>], t_f: usize) -> Vec<Vec<f64>> {
        let n = self.coeffs.len();
        let len = history.len();
        let mut out = vec![vec![0.0; n]; t_f];
        for j in 0..n {
            let series: Vec<f64> = history.iter().map(|r| r[j]).collect();
            if len <= self.season + self.p {
                // Too little history: seasonal persistence or last value.
                for step in 0..t_f {
                    let idx = (len + step).checked_sub(self.season);
                    out[step][j] = idx
                        .and_then(|i| series.get(i).copied())
                        .unwrap_or_else(|| *series.last().expect("non-empty"));
                }
                continue;
            }
            let mut diffs: Vec<f64> =
                (self.season..len).map(|t| series[t] - series[t - self.season]).collect();
            let mut extended = series.clone();
            for step in 0..t_f {
                let tail = &diffs[diffs.len() - self.p..];
                let delta = ridge_predict(&self.coeffs[j], tail);
                let seasonal_base = extended[extended.len() - self.season];
                let level = (seasonal_base + delta).max(0.0);
                extended.push(level);
                diffs.push(delta);
                out[step][j] = level;
            }
        }
        out
    }
}

/// Multi-horizon linear regression on normalized lags plus day-phase
/// features, one ridge model per table per forecast step (QB5000 trains
/// per-template models the same way).
#[derive(Debug, Clone)]
pub struct LinearRegression {
    t_in: usize,
    /// `weights[j][h]` predicts table `j`'s normalized value at step
    /// `h + 1`.
    weights: Vec<Vec<Vec<f64>>>,
}

impl LinearRegression {
    /// Fits on the training series for horizons up to `max_horizon`.
    /// The series must start at day-slot 0 (the generators' convention)
    /// so the phase features align between training and prediction.
    pub fn fit(train: &RateSeries, t_in: usize, max_horizon: usize) -> Self {
        let windows = train.windows(t_in, max_horizon);
        assert!(!windows.is_empty(), "training series too short");
        let n = train.width();
        let mut weights = Vec::with_capacity(n);
        for j in 0..n {
            let mut per_h = Vec::with_capacity(max_horizon);
            for h in 0..max_horizon {
                let mut xs = Vec::new();
                let mut ys = Vec::new();
                for (start, (input, target)) in windows.iter().enumerate() {
                    let origin = start + t_in;
                    let (feats, mean) = lag_phase_features(input, j, origin, t_in);
                    xs.push(feats);
                    ys.push(target[h][j] / mean);
                }
                per_h.push(ridge_fit(&xs, &ys, 1e-3).expect("ridge system solvable"));
            }
            weights.push(per_h);
        }
        Self { t_in, weights }
    }
}

fn normalized_window(input: &[Vec<f64>], table: usize) -> (Vec<f64>, f64) {
    let vals: Vec<f64> = input.iter().map(|r| r[table]).collect();
    let mean = (vals.iter().sum::<f64>() / vals.len() as f64).max(1e-6);
    (vals.iter().map(|v| v / mean).collect(), mean)
}

/// Day-phase features for prediction origin `t` (slot index): sine and
/// cosine at the daily frequency and its first two harmonics, capturing
/// the sharp commuter peaks. Real workload forecasters (QB5000 included)
/// feed timestamp features alongside lags.
fn phase_features(t: usize) -> [f64; 6] {
    let day = aets_workloads::bustracker::DAY_SLOTS as f64;
    let ang =
        2.0 * std::f64::consts::PI * ((t % aets_workloads::bustracker::DAY_SLOTS) as f64) / day;
    [
        ang.sin(),
        ang.cos(),
        (2.0 * ang).sin(),
        (2.0 * ang).cos(),
        (3.0 * ang).sin(),
        (3.0 * ang).cos(),
    ]
}

fn lag_phase_features(
    input: &[Vec<f64>],
    table: usize,
    origin: usize,
    t_in: usize,
) -> (Vec<f64>, f64) {
    let window = &input[input.len().saturating_sub(t_in)..];
    let (mut feats, mean) = normalized_window(window, table);
    while feats.len() < t_in {
        feats.insert(0, 1.0);
    }
    feats.extend(phase_features(origin));
    (feats, mean)
}

impl Forecaster for LinearRegression {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn forecast(&self, history: &[Vec<f64>], t_f: usize) -> Vec<Vec<f64>> {
        let n = history.last().map_or(0, Vec::len).min(self.weights.len());
        let t_f = t_f.min(self.weights.first().map_or(0, Vec::len));
        let origin = history.len();
        let mut out = vec![vec![0.0; n]; t_f];
        for j in 0..n {
            let (feats, mean) = lag_phase_features(history, j, origin, self.t_in);
            for (h, w) in self.weights[j][..t_f].iter().enumerate() {
                out[h][j] = (ridge_predict(w, &feats) * mean).max(0.0);
            }
        }
        out
    }
}

/// Nadaraya-Watson kernel regression with an RBF kernel over normalized
/// lag windows plus day-phase features, one exemplar set per table.
#[derive(Debug, Clone)]
pub struct KernelRegression {
    t_in: usize,
    bandwidth: f64,
    /// Per-table `(features, normalized future ratios)` exemplars.
    exemplars: Vec<Vec<(Vec<f64>, Vec<f64>)>>,
    max_horizon: usize,
}

impl KernelRegression {
    /// Builds the exemplar sets from the training series.
    pub fn fit(train: &RateSeries, t_in: usize, max_horizon: usize, bandwidth: f64) -> Self {
        let windows = train.windows(t_in, max_horizon);
        assert!(!windows.is_empty(), "training series too short");
        let n = train.width();
        let mut exemplars = vec![Vec::new(); n];
        for (start, (input, target)) in windows.iter().enumerate() {
            let origin = start + t_in;
            for j in 0..n {
                let (feats, mean) = lag_phase_features(input, j, origin, t_in);
                let fut: Vec<f64> = target.iter().map(|r| r[j] / mean).collect();
                exemplars[j].push((feats, fut));
            }
        }
        Self { t_in, bandwidth, exemplars, max_horizon }
    }
}

impl Forecaster for KernelRegression {
    fn name(&self) -> &'static str {
        "KR"
    }

    fn forecast(&self, history: &[Vec<f64>], t_f: usize) -> Vec<Vec<f64>> {
        let n = history.last().map_or(0, Vec::len);
        let t_f = t_f.min(self.max_horizon);
        let origin = history.len();
        let mut out = vec![vec![0.0; n]; t_f];
        let inv2b2 = 1.0 / (2.0 * self.bandwidth * self.bandwidth);
        for j in 0..n {
            let (feats, mean) = lag_phase_features(history, j, origin, self.t_in);
            let mut wsum = 0.0;
            let mut acc = vec![0.0; t_f];
            for (ex, fut) in &self.exemplars[j] {
                let d2: f64 = feats.iter().zip(ex).map(|(a, b)| (a - b) * (a - b)).sum();
                let k = (-d2 * inv2b2).exp();
                if k < 1e-12 {
                    continue;
                }
                wsum += k;
                for h in 0..t_f {
                    acc[h] += k * fut[h];
                }
            }
            for h in 0..t_f {
                out[h][j] = if wsum > 0.0 { (acc[h] / wsum * mean).max(0.0) } else { mean };
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{evaluate, mape};

    const SPLIT: usize = 120;

    fn series() -> (RateSeries, RateSeries) {
        let full = RateSeries::bustracker_hot(160, 0.08, 11);
        let (train, _) = full.split(SPLIT);
        (train, full)
    }

    #[test]
    fn ha_is_horizon_independent() {
        let (_, full) = series();
        let ha = Ha { window: 60 };
        let hist = full.values[..40].to_vec();
        let f5 = ha.forecast(&hist, 5);
        let f10 = ha.forecast(&hist, 10);
        assert_eq!(f5[0], f10[0]);
        assert_eq!(f10[9], f10[0]);
    }

    #[test]
    fn arima_beats_ha_on_trending_series() {
        let (train, full) = series();
        let arima = Arima::fit(&train, 3);
        let ha = Ha { window: 60 };
        let e_arima = evaluate(&arima, &full, SPLIT, 5);
        let e_ha = evaluate(&ha, &full, SPLIT, 5);
        assert!(e_arima < e_ha, "ARIMA {e_arima} should beat HA {e_ha} at short horizon");
    }

    #[test]
    fn lr_learns_the_shape() {
        let (train, full) = series();
        let lr = LinearRegression::fit(&train, 12, 10);
        let e = evaluate(&lr, &full, SPLIT, 5);
        assert!(e < 0.3, "LR MAPE {e} should be reasonable");
    }

    #[test]
    fn kr_predictions_are_positive_and_sane() {
        let (train, full) = series();
        let kr = KernelRegression::fit(&train, 12, 10, 0.5);
        let e = evaluate(&kr, &full, SPLIT, 5);
        assert!(e < 0.4, "KR MAPE {e}");
        let pred = kr.forecast(&full.values[..30], 5);
        assert!(pred.iter().flatten().all(|v| *v >= 0.0));
    }

    #[test]
    fn perfect_prediction_gives_zero_mape() {
        let truth = vec![vec![2.0, 4.0], vec![3.0, 9.0]];
        assert_eq!(mape(&truth.clone(), &truth), 0.0);
    }
}
