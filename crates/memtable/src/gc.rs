//! Version-chain garbage collection.
//!
//! The backup accumulates one version per replayed modification; long
//! runs need the HANA-style hybrid GC the paper's storage model assumes
//! (Lee et al., SIGMOD'16, the paper's storage reference). This module
//! implements watermark-based pruning: given the minimum snapshot
//! timestamp any active reader may still use (on the backup that is the
//! oldest admitted query's `qts`), every version chain can drop all
//! versions strictly older than the newest version at-or-below the
//! watermark — that newest one must survive, because it is exactly what a
//! reader at the watermark reconstructs.
//!
//! Subtlety: `update` versions are *partial* (they carry only modified
//! columns). Dropping older versions below a partial update would lose
//! the untouched columns, so the surviving boundary version is first
//! *consolidated* — rewritten as a full `insert` image of the row at the
//! watermark (or a `delete` tombstone).

use crate::record::{OpType, RecordNode, Version};
use crate::table::{MemDb, Table};
use aets_common::Timestamp;
use parking_lot::Mutex;

/// Statistics from one GC pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Record nodes visited.
    pub nodes: usize,
    /// Versions removed.
    pub pruned: usize,
    /// Versions kept.
    pub retained: usize,
    /// Boundary versions consolidated into full images.
    pub consolidated: usize,
}

impl GcStats {
    /// Accumulates `other` into `self` (used across passes and by
    /// `ReplayMetrics`).
    pub fn merge(&mut self, other: GcStats) {
        self.nodes += other.nodes;
        self.pruned += other.pruned;
        self.retained += other.retained;
        self.consolidated += other.consolidated;
    }
}

/// Prunes one record's chain against the watermark. Exposed for tests;
/// engines call [`gc_table`] / [`gc_db`].
pub fn gc_node(node: &RecordNode, watermark: Timestamp) -> GcStats {
    // Reconstruct the row at the watermark *before* taking the write
    // lock (reads take the shared lock internally).
    let boundary = node.version_at(watermark);
    let mut stats = GcStats { nodes: 1, ..Default::default() };
    let Some((boundary_txn, boundary_ts, boundary_op)) = boundary else {
        // Nothing visible at the watermark: every version is newer;
        // nothing can be pruned.
        stats.retained = node.version_count();
        return stats;
    };
    let image = node.read_at(watermark);
    let _ = boundary_op;
    node.replace_prefix(watermark, || {
        // Build the consolidated boundary version: a full row image, or a
        // tombstone when the row is invisible at the watermark.
        let op = if image.is_some() { OpType::Insert } else { OpType::Delete };
        Version {
            txn_id: boundary_txn,
            commit_ts: boundary_ts,
            op,
            cols: image.clone().unwrap_or_default(),
        }
    });
    // Recompute stats from the chain after replacement.
    stats.retained = node.version_count();
    stats.consolidated = 1;
    stats
}

/// Runs GC over every record of a table.
pub fn gc_table(table: &Table, watermark: Timestamp) -> GcStats {
    let mut stats = GcStats::default();
    let before = table.total_versions();
    for node in table.nodes() {
        stats.merge(gc_node(&node, watermark));
    }
    let after = table.total_versions();
    stats.pruned = before.saturating_sub(after);
    stats
}

/// Runs GC over the whole database.
pub fn gc_db(db: &MemDb, watermark: Timestamp) -> GcStats {
    let mut stats = GcStats::default();
    for t in db.tables() {
        stats.merge(gc_table(t, watermark));
    }
    stats
}

/// A ticket returned by [`QueryFloor::pin`]; hand it back to
/// [`QueryFloor::release`] when the reader is done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloorTicket(usize);

/// Registry of active reader snapshot timestamps, shared between the
/// query-serving layer (which pins one entry per open session) and the GC
/// driver (which must never prune a version an active reader can still
/// reconstruct).
///
/// [`QueryFloor::floor`] is the minimum pinned `qts`, or `Timestamp::MAX`
/// when no reader is active — i.e. the value to pass as `query_floor`
/// into the visibility board's GC watermark.
#[derive(Debug, Default)]
pub struct QueryFloor {
    slots: Mutex<Vec<Option<Timestamp>>>,
}

impl QueryFloor {
    /// An empty registry (floor at `Timestamp::MAX`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins `qts` into the floor until the ticket is released.
    pub fn pin(&self, qts: Timestamp) -> FloorTicket {
        let mut slots = self.slots.lock();
        if let Some(i) = slots.iter().position(Option::is_none) {
            slots[i] = Some(qts);
            FloorTicket(i)
        } else {
            slots.push(Some(qts));
            FloorTicket(slots.len() - 1)
        }
    }

    /// Releases a pin. Releasing a ticket twice is a no-op.
    pub fn release(&self, ticket: FloorTicket) {
        let mut slots = self.slots.lock();
        if let Some(slot) = slots.get_mut(ticket.0) {
            *slot = None;
        }
    }

    /// The minimum pinned `qts` (`Timestamp::MAX` when none are active).
    pub fn floor(&self) -> Timestamp {
        self.slots.lock().iter().flatten().min().copied().unwrap_or(Timestamp::MAX)
    }

    /// Number of currently pinned readers.
    pub fn active(&self) -> usize {
        self.slots.lock().iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::{ColumnId, RowKey, TableId, TxnId, Value};

    fn ver(txn: u64, ts: u64, op: OpType, cols: Vec<(u16, i64)>) -> Version {
        Version {
            txn_id: TxnId::new(txn),
            commit_ts: Timestamp::from_micros(ts),
            op,
            cols: cols.into_iter().map(|(c, v)| (ColumnId::new(c), Value::Int(v))).collect(),
        }
    }

    fn node_with_history() -> RecordNode {
        let n = RecordNode::new();
        n.append_version(ver(1, 10, OpType::Insert, vec![(0, 1), (1, 100)]));
        n.append_version(ver(2, 20, OpType::Update, vec![(0, 2)]));
        n.append_version(ver(3, 30, OpType::Update, vec![(1, 300)]));
        n.append_version(ver(4, 40, OpType::Update, vec![(0, 4)]));
        n
    }

    #[test]
    fn gc_preserves_reads_at_and_after_watermark() {
        let n = node_with_history();
        let watermark = Timestamp::from_micros(30);
        let want_at_wm = n.read_at(watermark);
        let want_latest = n.read_at(Timestamp::MAX);

        let stats = gc_node(&n, watermark);
        assert_eq!(stats.consolidated, 1);
        assert!(n.is_ordered());
        // Versions 1 and 2 merged into the boundary at ts=30; version 4
        // survives untouched.
        assert_eq!(n.version_count(), 2);
        assert_eq!(n.read_at(watermark), want_at_wm);
        assert_eq!(n.read_at(Timestamp::MAX), want_latest);
        // Partial-update columns were consolidated: the boundary now
        // carries BOTH columns.
        let row = n.read_at(watermark).unwrap();
        assert_eq!(row.len(), 2);
    }

    #[test]
    fn gc_below_first_version_is_a_noop() {
        let n = node_with_history();
        let stats = gc_node(&n, Timestamp::from_micros(5));
        assert_eq!(stats.retained, 4);
        assert_eq!(n.version_count(), 4);
    }

    #[test]
    fn gc_consolidates_delete_boundary() {
        let n = RecordNode::new();
        n.append_version(ver(1, 10, OpType::Insert, vec![(0, 1)]));
        n.append_version(ver(2, 20, OpType::Delete, vec![]));
        n.append_version(ver(3, 30, OpType::Insert, vec![(0, 9)]));
        gc_node(&n, Timestamp::from_micros(25));
        assert_eq!(n.version_count(), 2);
        assert_eq!(n.read_at(Timestamp::from_micros(25)), None, "tombstone preserved");
        assert!(n.read_at(Timestamp::from_micros(35)).is_some());
    }

    #[test]
    fn gc_at_max_keeps_one_version_per_row() {
        let n = node_with_history();
        gc_node(&n, Timestamp::MAX);
        assert_eq!(n.version_count(), 1);
        let row = n.read_at(Timestamp::MAX).unwrap();
        // Full consolidated image: col0 = 4 (last update), col1 = 300.
        assert_eq!(
            row,
            vec![(ColumnId::new(0), Value::Int(4)), (ColumnId::new(1), Value::Int(300)),]
        );
    }

    #[test]
    fn gc_tombstone_exactly_at_watermark_survives_as_tombstone() {
        // The boundary version IS the delete: it must be kept (as a
        // tombstone), not dropped — a reader at the watermark must still
        // observe "row absent", distinct from "row never existed with
        // newer versions pending".
        let n = RecordNode::new();
        n.append_version(ver(1, 10, OpType::Insert, vec![(0, 1)]));
        n.append_version(ver(2, 20, OpType::Delete, vec![]));
        let stats = gc_node(&n, Timestamp::from_micros(20));
        assert_eq!(stats.consolidated, 1);
        assert_eq!(n.version_count(), 1, "insert below the tombstone is pruned");
        assert_eq!(n.read_at(Timestamp::from_micros(20)), None);
        assert_eq!(n.read_at(Timestamp::MAX), None);
        assert!(n.is_ordered());
    }

    #[test]
    fn gc_consolidates_partial_update_that_is_oldest_in_chain() {
        // After a prior GC pass (or a truncated history) the oldest
        // version can itself be a partial update. When it is the
        // boundary, consolidation must still produce a full image from
        // whatever is reconstructible — not drop the untouched columns.
        let n = RecordNode::new();
        n.append_version(ver(5, 50, OpType::Update, vec![(0, 7)]));
        n.append_version(ver(6, 60, OpType::Update, vec![(1, 8)]));
        let watermark = Timestamp::from_micros(50);
        let want_at_wm = n.read_at(watermark);
        let want_latest = n.read_at(Timestamp::MAX);

        let stats = gc_node(&n, watermark);
        assert_eq!(stats.consolidated, 1);
        assert_eq!(n.version_count(), 2, "nothing below the boundary to prune");
        assert_eq!(n.read_at(watermark), want_at_wm);
        assert_eq!(n.read_at(Timestamp::MAX), want_latest);
        assert!(n.is_ordered());
    }

    #[test]
    fn gc_empty_chain_is_a_noop() {
        let n = RecordNode::new();
        let stats = gc_node(&n, Timestamp::from_micros(100));
        assert_eq!(stats, GcStats { nodes: 1, ..Default::default() });
        assert_eq!(n.version_count(), 0);
    }

    #[test]
    fn gc_with_no_visible_version_prunes_nothing() {
        // Every version is newer than the watermark: a reader at the
        // watermark sees nothing, and nothing may be pruned — each newer
        // version is still the boundary for some future reader.
        let n = node_with_history();
        let stats = gc_node(&n, Timestamp::from_micros(9));
        assert_eq!(stats.retained, 4);
        assert_eq!(stats.consolidated, 0);
        assert_eq!(n.version_count(), 4);
        assert_eq!(n.read_at(Timestamp::from_micros(9)), None);
    }

    #[test]
    fn query_floor_tracks_minimum_pin_and_reuses_slots() {
        let f = QueryFloor::new();
        assert_eq!(f.floor(), Timestamp::MAX, "empty registry never clamps GC");
        assert_eq!(f.active(), 0);
        let a = f.pin(Timestamp::from_micros(50));
        let b = f.pin(Timestamp::from_micros(30));
        let c = f.pin(Timestamp::from_micros(70));
        assert_eq!(f.floor(), Timestamp::from_micros(30));
        assert_eq!(f.active(), 3);
        f.release(b);
        assert_eq!(f.floor(), Timestamp::from_micros(50));
        f.release(b); // double release is a no-op
        assert_eq!(f.active(), 2);
        // The freed slot is reused rather than growing the slab.
        let d = f.pin(Timestamp::from_micros(10));
        assert_eq!(d, FloorTicket(1));
        assert_eq!(f.floor(), Timestamp::from_micros(10));
        f.release(a);
        f.release(c);
        f.release(d);
        assert_eq!(f.floor(), Timestamp::MAX);
    }

    #[test]
    fn gc_db_prunes_across_tables() {
        let db = MemDb::new(2);
        for t in 0..2u32 {
            for k in 0..50u64 {
                for v in 0..4u64 {
                    db.table(TableId::new(t)).apply_version(
                        RowKey::new(k),
                        ver(
                            k * 4 + v + 1,
                            (k * 4 + v + 1) * 10,
                            if v == 0 { OpType::Insert } else { OpType::Update },
                            vec![(0, v as i64)],
                        ),
                    );
                }
            }
        }
        let before = db.total_versions();
        assert_eq!(before, 2 * 50 * 4);
        let stats = gc_db(&db, Timestamp::MAX);
        assert_eq!(stats.nodes, 100);
        assert_eq!(db.total_versions(), 100, "one version per row remains");
        assert_eq!(stats.pruned, before - 100);
        assert!(db.all_chains_ordered());
    }
}
