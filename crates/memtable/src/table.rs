//! Per-table Memtable and the whole-database container.

use crate::bptree::BPlusTree;
use crate::record::{RecordNode, Version};
use aets_common::{Row, RowKey, TableId, Timestamp};
use parking_lot::RwLock;
use std::sync::Arc;

/// One table of the backup Memtable: a B+Tree from row key to a stable,
/// shareable [`RecordNode`].
///
/// Lock protocol: the index `RwLock` guards only the *structure* of the
/// B+Tree. Phase-1 lookups take the read lock; inserting a brand-new record
/// node (first time a key is seen) takes the write lock. Version chains are
/// mutated through the node's own lock, never through the index lock.
#[derive(Debug)]
pub struct Table {
    id: TableId,
    index: RwLock<BPlusTree<RowKey, Arc<RecordNode>>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: TableId) -> Self {
        Self { id, index: RwLock::new(BPlusTree::new()) }
    }

    /// Table identifier.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Number of record nodes (including not-yet-visible ones).
    pub fn len(&self) -> usize {
        self.index.read().len()
    }

    /// Whether the table has no record nodes.
    pub fn is_empty(&self) -> bool {
        self.index.read().is_empty()
    }

    /// Looks up the node for `key`, if present.
    pub fn node(&self, key: RowKey) -> Option<Arc<RecordNode>> {
        self.index.read().get(&key).cloned()
    }

    /// Looks up or creates the node for `key`.
    ///
    /// Used by TPLR phase 1 for `insert` log entries: the node is created
    /// immediately (so the cell can point at it) but stays invisible until
    /// the commit phase appends its first version.
    pub fn node_or_insert(&self, key: RowKey) -> Arc<RecordNode> {
        if let Some(n) = self.index.read().get(&key) {
            return n.clone();
        }
        let mut index = self.index.write();
        // Re-check: another worker may have raced us between locks.
        if let Some(n) = index.get(&key) {
            return n.clone();
        }
        let node = Arc::new(RecordNode::new());
        index.insert(key, node.clone());
        node
    }

    /// Convenience: append a committed version directly (used by the serial
    /// oracle and by tests; the parallel engines go through phase-1 cells).
    pub fn apply_version(&self, key: RowKey, v: Version) {
        self.node_or_insert(key).append_version(v);
    }

    /// Snapshot point read at `ts`.
    pub fn read_row(&self, key: RowKey, ts: Timestamp) -> Option<Row> {
        self.node(key).and_then(|n| n.read_at(ts))
    }

    /// Snapshot scan at `ts`: visits every row visible at `ts` in key
    /// order.
    pub fn scan_at<F: FnMut(RowKey, Row)>(&self, ts: Timestamp, mut f: F) {
        let index = self.index.read();
        index.scan(|k, n| {
            if let Some(row) = n.read_at(ts) {
                f(*k, row);
            }
        });
    }

    /// Snapshot scan over the inclusive key range `[lo, hi]` at `ts`.
    pub fn scan_range_at<F: FnMut(RowKey, Row)>(
        &self,
        lo: RowKey,
        hi: RowKey,
        ts: Timestamp,
        mut f: F,
    ) {
        let index = self.index.read();
        index.range_scan(&lo, &hi, |k, n| {
            if let Some(row) = n.read_at(ts) {
                f(*k, row);
            }
        });
    }

    /// Counts rows visible at `ts`.
    pub fn count_at(&self, ts: Timestamp) -> usize {
        let mut n = 0;
        self.scan_at(ts, |_, _| n += 1);
        n
    }

    /// Snapshot of every record node (used by the garbage collector;
    /// clones the `Arc`s so the index lock is released before chains are
    /// rewritten).
    pub fn nodes(&self) -> Vec<Arc<RecordNode>> {
        let index = self.index.read();
        let mut out = Vec::with_capacity(index.len());
        index.scan(|_, n| out.push(n.clone()));
        out
    }

    /// Snapshot of every `(key, node)` pair in key order (used by the
    /// checkpoint snapshot codec; clones the `Arc`s like
    /// [`Table::nodes`]).
    pub fn entries(&self) -> Vec<(RowKey, Arc<RecordNode>)> {
        let index = self.index.read();
        let mut out = Vec::with_capacity(index.len());
        index.scan(|k, n| out.push((*k, n.clone())));
        out
    }

    /// Checks the commit-order invariant on every version chain.
    pub fn all_chains_ordered(&self) -> bool {
        let index = self.index.read();
        let mut ok = true;
        index.scan(|_, n| ok &= n.is_ordered());
        ok
    }

    /// Total number of versions across all chains.
    pub fn total_versions(&self) -> usize {
        let index = self.index.read();
        let mut n = 0;
        index.scan(|_, node| n += node.version_count());
        n
    }

    /// Order-sensitive digest of the table contents visible at `ts`.
    /// Two tables with identical visible snapshots produce equal digests;
    /// used to check that different replay engines converge to the same
    /// state.
    pub fn digest_at(&self, ts: Timestamp) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = aets_common::FxHasher::default();
        self.scan_at(ts, |k, row| {
            k.raw().hash(&mut h);
            for (cid, v) in &row {
                cid.raw().hash(&mut h);
                match v {
                    aets_common::Value::Null => 0u8.hash(&mut h),
                    aets_common::Value::Int(i) => i.hash(&mut h),
                    aets_common::Value::Float(f) => f.to_bits().hash(&mut h),
                    aets_common::Value::Text(s) => s.hash(&mut h),
                    aets_common::Value::Bytes(b) => b.hash(&mut h),
                }
            }
        });
        h.finish()
    }
}

/// The backup node's in-memory database: one [`Table`] per table id.
#[derive(Debug)]
pub struct MemDb {
    tables: Vec<Table>,
}

impl MemDb {
    /// Creates a database with tables `0..num_tables`.
    pub fn new(num_tables: usize) -> Self {
        Self { tables: (0..num_tables).map(|i| Table::new(TableId::new(i as u32))).collect() }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Access a table by id. Panics on out-of-range ids (schema mismatch is
    /// a programming error, not a runtime condition).
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Iterates over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    /// Checks the commit-order invariant database-wide.
    pub fn all_chains_ordered(&self) -> bool {
        self.tables.iter().all(|t| t.all_chains_ordered())
    }

    /// Total versions across the database.
    pub fn total_versions(&self) -> usize {
        self.tables.iter().map(|t| t.total_versions()).sum()
    }

    /// Database-wide snapshot digest at `ts` (see [`Table::digest_at`]).
    pub fn digest_at(&self, ts: Timestamp) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = aets_common::FxHasher::default();
        for t in &self.tables {
            t.digest_at(ts).hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::OpType;
    use aets_common::{ColumnId, TxnId, Value};
    use std::thread;

    fn version(txn: u64, ts: u64, v: i64) -> Version {
        Version {
            txn_id: TxnId::new(txn),
            commit_ts: Timestamp::from_micros(ts),
            op: OpType::Insert,
            cols: vec![(ColumnId::new(0), Value::Int(v))],
        }
    }

    #[test]
    fn node_or_insert_is_idempotent() {
        let t = Table::new(TableId::new(0));
        let a = t.node_or_insert(RowKey::new(7));
        let b = t.node_or_insert(RowKey::new(7));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn invisible_until_version_appended() {
        let t = Table::new(TableId::new(0));
        let _node = t.node_or_insert(RowKey::new(1));
        assert_eq!(t.count_at(Timestamp::MAX), 0);
        t.apply_version(RowKey::new(1), version(1, 10, 5));
        assert_eq!(t.count_at(Timestamp::MAX), 1);
        assert_eq!(t.count_at(Timestamp::from_micros(9)), 0);
    }

    #[test]
    fn scan_at_sees_snapshot() {
        let t = Table::new(TableId::new(0));
        for i in 0..100u64 {
            t.apply_version(RowKey::new(i), version(i + 1, (i + 1) * 10, i as i64));
        }
        assert_eq!(t.count_at(Timestamp::from_micros(500)), 50);
        let mut keys = Vec::new();
        t.scan_at(Timestamp::from_micros(305), |k, _| keys.push(k.raw()));
        assert_eq!(keys, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_node_or_insert_races_safely() {
        let t = Arc::new(Table::new(TableId::new(0)));
        let mut handles = Vec::new();
        for tid in 0..8 {
            let t = t.clone();
            handles.push(thread::spawn(move || {
                for i in 0..500u64 {
                    let _ = t.node_or_insert(RowKey::new(i % 100));
                    let _ = t.node(RowKey::new((i + tid) % 100));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn memdb_indexes_tables() {
        let db = MemDb::new(3);
        assert_eq!(db.num_tables(), 3);
        db.table(TableId::new(2)).apply_version(RowKey::new(1), version(1, 1, 1));
        assert_eq!(db.total_versions(), 1);
        assert!(db.all_chains_ordered());
    }
}
