//! Multi-version record nodes.
//!
//! Every record in the Memtable owns a *version chain* ordered by primary
//! commit: TPLR's phase 2 (Algorithm 1) appends a new version under a
//! short exclusive lock, and readers reconstruct the row visible at a
//! snapshot timestamp by walking the chain backwards.

use aets_common::{ColumnId, Row, Timestamp, TxnId};
use parking_lot::RwLock;

/// The kind of DML a version carries. Alias of the shared log-level
/// operation enum: a version chain stores exactly what the value log said.
pub use aets_common::DmlOp as OpType;

/// One committed version of a record.
#[derive(Debug, Clone)]
pub struct Version {
    /// Transaction that produced this version (primary commit order).
    pub txn_id: TxnId,
    /// Commit timestamp on the primary.
    pub commit_ts: Timestamp,
    /// DML kind.
    pub op: OpType,
    /// Column payload (see [`OpType`]).
    pub cols: Row,
}

/// A record node in the Memtable.
///
/// The node address is stable for the record's lifetime: TPLR's phase 1
/// stores `Arc<RecordNode>` pointers in transaction contexts, and phase 2
/// appends to `versions` without touching the table index (Figure 6).
#[derive(Debug, Default)]
pub struct RecordNode {
    versions: RwLock<Vec<Version>>,
}

impl RecordNode {
    /// Creates an empty node (no visible versions).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a committed version (Algorithm 1 lines 9-13).
    ///
    /// The caller — the single commit thread of the record's table group —
    /// must append in primary commit order; this is checked in debug builds
    /// and verifiable after the fact via [`RecordNode::is_ordered`].
    pub fn append_version(&self, v: Version) {
        let mut chain = self.versions.write();
        // Non-strict: one transaction may modify the same record twice; its
        // cells are appended in LSN order under the same txn id.
        debug_assert!(
            chain.last().is_none_or(|last| last.txn_id <= v.txn_id),
            "version appended out of commit order: {:?} after {:?}",
            v.txn_id,
            chain.last().map(|l| l.txn_id),
        );
        chain.push(v);
    }

    /// Number of versions in the chain.
    pub fn version_count(&self) -> usize {
        self.versions.read().len()
    }

    /// Commit timestamp of the newest version, if any.
    pub fn latest_commit_ts(&self) -> Option<Timestamp> {
        self.versions.read().last().map(|v| v.commit_ts)
    }

    /// Whether the version chain is in non-decreasing txn-id order — the
    /// core correctness invariant of the commit phase. (Equal adjacent ids
    /// are allowed: a single transaction touching the record twice.)
    pub fn is_ordered(&self) -> bool {
        let chain = self.versions.read();
        chain.windows(2).all(|w| w[0].txn_id <= w[1].txn_id)
    }

    /// Reconstructs the row visible at snapshot `ts`: the merge of the
    /// latest insert at-or-before `ts` with every later update at-or-before
    /// `ts`. Returns `None` if the record does not exist at `ts` (never
    /// inserted yet, or deleted).
    pub fn read_at(&self, ts: Timestamp) -> Option<Row> {
        let chain = self.versions.read();
        // Index of the first version with commit_ts > ts.
        let end = chain.partition_point(|v| v.commit_ts <= ts);
        if end == 0 {
            return None;
        }
        let visible = &chain[..end];
        // Walk backwards collecting column values until the anchoring
        // insert (full image) or a tombstone.
        let mut merged: Vec<(ColumnId, Option<&aets_common::Value>)> = Vec::new();
        let mut have = aets_common::FxHashSet::default();
        for v in visible.iter().rev() {
            match v.op {
                OpType::Delete => return None,
                OpType::Update | OpType::Insert => {
                    for (cid, val) in &v.cols {
                        if have.insert(*cid) {
                            merged.push((*cid, Some(val)));
                        }
                    }
                    if v.op == OpType::Insert {
                        let mut row: Row = merged
                            .into_iter()
                            .filter_map(|(c, v)| v.map(|v| (c, v.clone())))
                            .collect();
                        row.sort_by_key(|(c, _)| *c);
                        return Some(row);
                    }
                }
            }
        }
        // Updates without a preceding visible insert: the record predates
        // the replayed log (e.g. loaded base data). Treat the merged
        // updates as the visible image.
        let mut row: Row =
            merged.into_iter().filter_map(|(c, v)| v.map(|v| (c, v.clone()))).collect();
        row.sort_by_key(|(c, _)| *c);
        Some(row)
    }

    /// Replaces every version with `commit_ts <= watermark` by a single
    /// consolidated boundary version built by `make_boundary`. Used by
    /// the garbage collector; no-op when nothing is at-or-below the
    /// watermark. Holds the exclusive lock for the swap only.
    pub fn replace_prefix(&self, watermark: Timestamp, make_boundary: impl FnOnce() -> Version) {
        let mut chain = self.versions.write();
        let end = chain.partition_point(|v| v.commit_ts <= watermark);
        if end == 0 {
            return;
        }
        let boundary = make_boundary();
        debug_assert!(boundary.commit_ts <= watermark, "boundary beyond watermark");
        let mut replaced = Vec::with_capacity(1 + chain.len() - end);
        replaced.push(boundary);
        replaced.extend(chain.drain(end..));
        *chain = replaced;
    }

    /// Clones the full version chain under the shared lock. Used by the
    /// checkpoint snapshot codec, which serializes chains while the
    /// engine is quiesced at an epoch barrier.
    pub fn versions_snapshot(&self) -> Vec<Version> {
        self.versions.read().clone()
    }

    /// Latest visible version (metadata only) at `ts`, if any.
    pub fn version_at(&self, ts: Timestamp) -> Option<(TxnId, Timestamp, OpType)> {
        let chain = self.versions.read();
        let end = chain.partition_point(|v| v.commit_ts <= ts);
        if end == 0 {
            None
        } else {
            let v = &chain[end - 1];
            Some((v.txn_id, v.commit_ts, v.op))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::Value;

    fn ver(txn: u64, ts: u64, op: OpType, cols: Vec<(u16, i64)>) -> Version {
        Version {
            txn_id: TxnId::new(txn),
            commit_ts: Timestamp::from_micros(ts),
            op,
            cols: cols.into_iter().map(|(c, v)| (ColumnId::new(c), Value::Int(v))).collect(),
        }
    }

    #[test]
    fn read_before_any_version_is_none() {
        let n = RecordNode::new();
        assert_eq!(n.read_at(Timestamp::from_micros(100)), None);
        n.append_version(ver(1, 10, OpType::Insert, vec![(0, 1)]));
        assert_eq!(n.read_at(Timestamp::from_micros(5)), None);
    }

    #[test]
    fn insert_then_updates_merge() {
        let n = RecordNode::new();
        n.append_version(ver(1, 10, OpType::Insert, vec![(0, 1), (1, 2), (2, 3)]));
        n.append_version(ver(2, 20, OpType::Update, vec![(1, 20)]));
        n.append_version(ver(3, 30, OpType::Update, vec![(2, 30)]));

        let at = |ts| n.read_at(Timestamp::from_micros(ts)).unwrap();
        let get = |row: &Row, c: u16| {
            row.iter().find(|(cid, _)| *cid == ColumnId::new(c)).map(|(_, v)| v.clone())
        };

        let r10 = at(10);
        assert_eq!(get(&r10, 1), Some(Value::Int(2)));
        let r25 = at(25);
        assert_eq!(get(&r25, 1), Some(Value::Int(20)));
        assert_eq!(get(&r25, 2), Some(Value::Int(3)));
        let r35 = at(35);
        assert_eq!(get(&r35, 2), Some(Value::Int(30)));
        assert_eq!(get(&r35, 0), Some(Value::Int(1)));
    }

    #[test]
    fn delete_hides_record_then_reinsert_revives() {
        let n = RecordNode::new();
        n.append_version(ver(1, 10, OpType::Insert, vec![(0, 1)]));
        n.append_version(ver(2, 20, OpType::Delete, vec![]));
        n.append_version(ver(3, 30, OpType::Insert, vec![(0, 99)]));

        assert!(n.read_at(Timestamp::from_micros(15)).is_some());
        assert_eq!(n.read_at(Timestamp::from_micros(25)), None);
        let r = n.read_at(Timestamp::from_micros(35)).unwrap();
        assert_eq!(r, vec![(ColumnId::new(0), Value::Int(99))]);
    }

    #[test]
    fn updates_without_insert_are_visible() {
        // Records loaded as base data get update-only chains.
        let n = RecordNode::new();
        n.append_version(ver(5, 50, OpType::Update, vec![(0, 7)]));
        let r = n.read_at(Timestamp::from_micros(60)).unwrap();
        assert_eq!(r, vec![(ColumnId::new(0), Value::Int(7))]);
    }

    #[test]
    fn version_metadata_accessors() {
        let n = RecordNode::new();
        assert_eq!(n.latest_commit_ts(), None);
        n.append_version(ver(1, 10, OpType::Insert, vec![(0, 1)]));
        n.append_version(ver(4, 40, OpType::Update, vec![(0, 2)]));
        assert_eq!(n.version_count(), 2);
        assert_eq!(n.latest_commit_ts(), Some(Timestamp::from_micros(40)));
        assert!(n.is_ordered());
        let (txn, ts, op) = n.version_at(Timestamp::from_micros(39)).unwrap();
        assert_eq!(txn, TxnId::new(1));
        assert_eq!(ts, Timestamp::from_micros(10));
        assert_eq!(op, OpType::Insert);
    }

    #[test]
    #[should_panic(expected = "out of commit order")]
    #[cfg(debug_assertions)]
    fn out_of_order_append_panics_in_debug() {
        let n = RecordNode::new();
        n.append_version(ver(5, 50, OpType::Insert, vec![]));
        n.append_version(ver(3, 30, OpType::Update, vec![]));
    }
}
