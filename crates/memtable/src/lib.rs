//! MVCC main-memory storage engine for the AETS backup node.
//!
//! Mirrors the prototype of Section VI-A of the paper: each table is a
//! from-scratch [`BPlusTree`] index whose leaves hold stable, shareable
//! [`RecordNode`]s; each record keeps a transaction-ID-ordered version
//! chain. Readers reconstruct the row visible at a snapshot timestamp;
//! the commit phase of TPLR appends versions under a short per-record
//! exclusive lock.

pub mod bptree;
pub mod gc;
pub mod query;
pub mod record;
#[cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod snapshot;
pub mod table;

pub use bptree::BPlusTree;
pub use gc::{gc_db, gc_node, gc_table, FloorTicket, GcStats, QueryFloor};
pub use query::{compare_values, Aggregate, CmpOp, Filter, Scan};
pub use record::{OpType, RecordNode, Version};
pub use snapshot::{decode_db, encode_db};
pub use table::{MemDb, Table};
