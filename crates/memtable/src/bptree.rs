//! A from-scratch B+Tree used as the per-table index of the Memtable.
//!
//! The paper's backup prototype "utilizes a B+Tree as the in-memory storage
//! engine" (Section VI-A). This implementation stores values only in leaves
//! and keeps leaf keys sorted, giving `O(log n)` point lookups and ordered
//! scans for analytical reads.
//!
//! The tree itself is single-writer: the owning [`crate::Table`] wraps it
//! in a `RwLock` (structural changes — inserting a new record node — take
//! the write lock; lookups take the read lock). Version-chain mutation does
//! not touch the tree at all, which is what makes TPLR's lock-free phase 1
//! possible.

use std::mem;

/// Maximum number of keys per node before it splits.
const MAX_KEYS: usize = 32;

// Boxing the `Vec` keeps sibling nodes pointer-sized inside parents.
#[allow(clippy::box_collection, clippy::vec_box)]
#[derive(Debug, Clone)]
enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
    },
    Internal {
        /// Separator keys: child `i` holds keys `< keys[i]`; child `i+1`
        /// holds keys `>= keys[i]`.
        keys: Vec<K>,
        children: Vec<Box<Node<K, V>>>,
    },
}

enum InsertResult<K, V> {
    Done(Option<V>),
    Split(K, Box<Node<K, V>>),
}

impl<K: Ord + Clone, V> Node<K, V> {
    fn get(&self, key: &K) -> Option<&V> {
        match self {
            Node::Leaf { keys, vals } => keys.binary_search(key).ok().map(|i| &vals[i]),
            Node::Internal { keys, children } => {
                let i = keys.partition_point(|k| k <= key);
                children[i].get(key)
            }
        }
    }

    fn insert(&mut self, key: K, val: V) -> InsertResult<K, V> {
        match self {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => InsertResult::Done(Some(mem::replace(&mut vals[i], val))),
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, val);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let rkeys = keys.split_off(mid);
                        let rvals = vals.split_off(mid);
                        let sep = rkeys[0].clone();
                        InsertResult::Split(sep, Box::new(Node::Leaf { keys: rkeys, vals: rvals }))
                    } else {
                        InsertResult::Done(None)
                    }
                }
            },
            Node::Internal { keys, children } => {
                let i = keys.partition_point(|k| *k <= key);
                match children[i].insert(key, val) {
                    InsertResult::Done(r) => InsertResult::Done(r),
                    InsertResult::Split(sep, right) => {
                        keys.insert(i, sep);
                        children.insert(i + 1, right);
                        if keys.len() > MAX_KEYS {
                            let mid = keys.len() / 2;
                            let sep_up = keys[mid].clone();
                            let rkeys = keys.split_off(mid + 1);
                            keys.pop(); // drop sep_up from the left node
                            let rchildren = children.split_off(mid + 1);
                            InsertResult::Split(
                                sep_up,
                                Box::new(Node::Internal { keys: rkeys, children: rchildren }),
                            )
                        } else {
                            InsertResult::Done(None)
                        }
                    }
                }
            }
        }
    }

    fn scan<F: FnMut(&K, &V)>(&self, f: &mut F) {
        match self {
            Node::Leaf { keys, vals } => {
                for (k, v) in keys.iter().zip(vals) {
                    f(k, v);
                }
            }
            Node::Internal { children, .. } => {
                for c in children {
                    c.scan(f);
                }
            }
        }
    }

    fn range_scan<F: FnMut(&K, &V)>(&self, lo: &K, hi: &K, f: &mut F) {
        match self {
            Node::Leaf { keys, vals } => {
                let start = keys.partition_point(|k| k < lo);
                for i in start..keys.len() {
                    if &keys[i] > hi {
                        break;
                    }
                    f(&keys[i], &vals[i]);
                }
            }
            Node::Internal { keys, children } => {
                let first = keys.partition_point(|k| k <= lo);
                let last = keys.partition_point(|k| k <= hi);
                for c in &children[first..=last] {
                    c.range_scan(lo, hi, f);
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => 1 + children[0].depth(),
        }
    }
}

/// An ordered map backed by a B+Tree.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    root: Box<Node<K, V>>,
    len: usize,
}

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self { root: Box::new(Node::Leaf { keys: Vec::new(), vals: Vec::new() }), len: 0 }
    }

    /// Number of key/value pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.root.get(key)
    }

    /// Inserts `key -> val`, returning the previous value if present.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        match self.root.insert(key, val) {
            InsertResult::Done(old) => {
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
            InsertResult::Split(sep, right) => {
                self.len += 1;
                let placeholder = Node::Leaf { keys: Vec::new(), vals: Vec::new() };
                let old_root = mem::replace(&mut *self.root, placeholder);
                *self.root =
                    Node::Internal { keys: vec![sep], children: vec![Box::new(old_root), right] };
                None
            }
        }
    }

    /// Visits every pair in key order.
    pub fn scan<F: FnMut(&K, &V)>(&self, mut f: F) {
        self.root.scan(&mut f);
    }

    /// Visits pairs with `lo <= key <= hi` in key order.
    pub fn range_scan<F: FnMut(&K, &V)>(&self, lo: &K, hi: &K, mut f: F) {
        if lo > hi {
            return;
        }
        self.root.range_scan(lo, hi, &mut f);
    }

    /// Tree height (1 for a single leaf). Exposed for tests/benches.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_tree_behaves() {
        let t: BPlusTree<u64, u64> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(&1), None);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn insert_get_overwrite() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(5u64, "a"), None);
        assert_eq!(t.insert(5u64, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&5), Some(&"b"));
    }

    #[test]
    fn sequential_inserts_split_and_stay_sorted() {
        let mut t = BPlusTree::new();
        for i in 0..10_000u64 {
            t.insert(i, i * 2);
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.depth() > 1, "tree should have split");
        let mut prev = None;
        let mut count = 0usize;
        t.scan(|k, v| {
            if let Some(p) = prev {
                assert!(*k > p, "keys out of order");
            }
            assert_eq!(*v, *k * 2);
            prev = Some(*k);
            count += 1;
        });
        assert_eq!(count, 10_000);
    }

    #[test]
    fn reverse_inserts_work() {
        let mut t = BPlusTree::new();
        for i in (0..5000u64).rev() {
            t.insert(i, ());
        }
        assert_eq!(t.len(), 5000);
        for i in 0..5000u64 {
            assert!(t.get(&i).is_some(), "missing key {i}");
        }
    }

    #[test]
    fn range_scan_bounds_are_inclusive() {
        let mut t = BPlusTree::new();
        for i in 0..1000u64 {
            t.insert(i, i);
        }
        let mut seen = Vec::new();
        t.range_scan(&100, &110, |k, _| seen.push(*k));
        assert_eq!(seen, (100..=110).collect::<Vec<_>>());
        // Empty range.
        let mut seen2 = Vec::new();
        t.range_scan(&50, &40, |k, _| seen2.push(*k));
        assert!(seen2.is_empty());
    }

    #[test]
    fn range_scan_on_boundaries_across_splits() {
        let mut t = BPlusTree::new();
        for i in (0..4000u64).step_by(2) {
            t.insert(i, i);
        }
        // Bounds that do not exist as keys.
        let mut seen = Vec::new();
        t.range_scan(&999, &1011, |k, _| seen.push(*k));
        assert_eq!(seen, vec![1000, 1002, 1004, 1006, 1008, 1010]);
    }

    proptest! {
        #[test]
        fn matches_btreemap(ops in prop::collection::vec((any::<u16>(), any::<u32>()), 0..2000)) {
            let mut ours = BPlusTree::new();
            let mut std = BTreeMap::new();
            for (k, v) in &ops {
                prop_assert_eq!(ours.insert(*k, *v), std.insert(*k, *v));
            }
            prop_assert_eq!(ours.len(), std.len());
            for (k, v) in &std {
                prop_assert_eq!(ours.get(k), Some(v));
            }
            let mut pairs = Vec::new();
            ours.scan(|k, v| pairs.push((*k, *v)));
            let expect: Vec<_> = std.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(pairs, expect);
        }

        #[test]
        fn range_matches_btreemap(
            keys in prop::collection::btree_set(any::<u16>(), 0..500),
            lo in any::<u16>(),
            hi in any::<u16>(),
        ) {
            let mut ours = BPlusTree::new();
            for k in &keys {
                ours.insert(*k, ());
            }
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            let mut got = Vec::new();
            ours.range_scan(&lo, &hi, |k, _| got.push(*k));
            let expect: Vec<_> = keys.range(lo..=hi).copied().collect();
            prop_assert_eq!(got, expect);
        }
    }
}
