//! Serializing a consistent Memtable snapshot for checkpoints.
//!
//! The checkpoint subsystem quiesces the AETS engine at an epoch barrier
//! — where the global watermark makes the Memtable consistent by
//! construction — and streams the whole database to disk through this
//! codec. Row payloads reuse the value log's wire format
//! ([`aets_wal::encode_row`]), so a checkpoint exercises exactly the same
//! battle-tested value encoding as the log itself.
//!
//! ## Wire format (little-endian)
//!
//! ```text
//! [num_tables u32]
//! per table:   [table_id u32] [num_keys u64]
//! per key:     [key u64] [num_versions u32]
//! per version: [txn_id u64] [commit_ts u64] [op u8] [row]
//! ```
//!
//! Versions are written in chain order, so decoding re-appends them in
//! commit order and every restored chain satisfies the same ordering
//! invariant as a live one. Integrity (CRC, atomic rename) is the
//! checkpoint store's job, not the codec's: the store checksums the whole
//! snapshot blob alongside its manifest.

use crate::record::{OpType, Version};
use crate::table::MemDb;
use aets_common::{Error, Result, RowKey, Timestamp, TxnId};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serializes the versions of `db` with `commit_ts <= watermark` into
/// `buf`. Pass [`Timestamp::MAX`] to snapshot everything; checkpoints
/// pass the epoch-barrier watermark, which at a barrier is equivalent
/// (no version beyond the barrier exists yet) but keeps the on-disk
/// state independent of any replay that races the serialization.
pub fn encode_db(buf: &mut BytesMut, db: &MemDb, watermark: Timestamp) {
    buf.put_u32_le(db.num_tables() as u32);
    for table in db.tables() {
        let entries = table.entries();
        buf.put_u32_le(table.id().raw());
        // Count keys with at least one covered version first: invisible
        // nodes (created by phase 1, never committed) are not persisted.
        let mut kept: Vec<(RowKey, Vec<Version>)> = Vec::with_capacity(entries.len());
        for (key, node) in entries {
            let mut chain = node.versions_snapshot();
            chain.retain(|v| v.commit_ts <= watermark);
            if !chain.is_empty() {
                kept.push((key, chain));
            }
        }
        buf.put_u64_le(kept.len() as u64);
        for (key, chain) in kept {
            buf.put_u64_le(key.raw());
            buf.put_u32_le(chain.len() as u32);
            for v in chain {
                buf.put_u64_le(v.txn_id.raw());
                buf.put_u64_le(v.commit_ts.as_micros());
                buf.put_u8(v.op.tag());
                aets_wal::encode_row(buf, &v.cols);
            }
        }
    }
}

/// Rebuilds a [`MemDb`] from a snapshot produced by [`encode_db`],
/// consuming `buf`. Restored chains preserve serialization order, so the
/// commit-order invariant holds by construction.
pub fn decode_db(buf: &mut Bytes) -> Result<MemDb> {
    need(buf, 4)?;
    let num_tables = buf.get_u32_le() as usize;
    let db = MemDb::new(num_tables);
    for _ in 0..num_tables {
        need(buf, 12)?;
        let table_id = aets_common::TableId::new(buf.get_u32_le());
        if table_id.index() >= num_tables {
            return Err(Error::Codec(format!("snapshot table id {table_id:?} out of range")));
        }
        let table = db.table(table_id);
        let num_keys = buf.get_u64_le();
        for _ in 0..num_keys {
            need(buf, 12)?;
            let key = RowKey::new(buf.get_u64_le());
            let num_versions = buf.get_u32_le();
            let node = table.node_or_insert(key);
            for _ in 0..num_versions {
                need(buf, 17)?;
                let txn_id = TxnId::new(buf.get_u64_le());
                let commit_ts = Timestamp::from_micros(buf.get_u64_le());
                let op = OpType::from_tag(buf.get_u8()).ok_or(Error::CodecBadTag)?;
                let cols = aets_wal::decode_row(buf)?;
                node.append_version(Version { txn_id, commit_ts, op, cols });
            }
        }
    }
    if buf.has_remaining() {
        return Err(Error::Codec(format!("{} trailing bytes after snapshot", buf.remaining())));
    }
    Ok(db)
}

fn need(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(Error::CodecTruncated)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::{ColumnId, TableId, Value};

    fn ver(txn: u64, ts: u64, op: OpType, cols: Vec<(u16, Value)>) -> Version {
        Version {
            txn_id: TxnId::new(txn),
            commit_ts: Timestamp::from_micros(ts),
            op,
            cols: cols.into_iter().map(|(c, v)| (ColumnId::new(c), v)).collect(),
        }
    }

    fn sample_db() -> MemDb {
        let db = MemDb::new(3);
        let t0 = db.table(TableId::new(0));
        t0.apply_version(
            RowKey::new(1),
            ver(1, 10, OpType::Insert, vec![(0, Value::Int(1)), (1, Value::Text("a".into()))]),
        );
        t0.apply_version(RowKey::new(1), ver(2, 20, OpType::Update, vec![(0, Value::Int(2))]));
        t0.apply_version(RowKey::new(2), ver(3, 30, OpType::Insert, vec![(0, Value::Null)]));
        t0.apply_version(RowKey::new(2), ver(4, 40, OpType::Delete, vec![]));
        let t2 = db.table(TableId::new(2));
        t2.apply_version(
            RowKey::new(9),
            ver(5, 50, OpType::Insert, vec![(3, Value::Float(2.5)), (4, Value::from(vec![7u8]))]),
        );
        // Table 1 stays empty; an invisible phase-1 node must not persist.
        let _ = db.table(TableId::new(1)).node_or_insert(RowKey::new(77));
        db
    }

    #[test]
    fn snapshot_round_trips_digest_and_chains() {
        let db = sample_db();
        let mut buf = BytesMut::new();
        encode_db(&mut buf, &db, Timestamp::MAX);
        let mut bytes = buf.freeze();
        let back = decode_db(&mut bytes).unwrap();

        assert_eq!(back.num_tables(), db.num_tables());
        assert_eq!(back.total_versions(), db.total_versions());
        assert!(back.all_chains_ordered());
        for ts in [0u64, 15, 25, 35, 45, 55, u64::MAX] {
            let ts = Timestamp::from_micros(ts);
            assert_eq!(back.digest_at(ts), db.digest_at(ts), "digest diverges at {ts:?}");
        }
        // The invisible node was dropped, not resurrected.
        assert!(back.table(TableId::new(1)).is_empty());
    }

    #[test]
    fn watermark_filters_newer_versions() {
        let db = sample_db();
        let mut buf = BytesMut::new();
        encode_db(&mut buf, &db, Timestamp::from_micros(30));
        let back = decode_db(&mut buf.freeze()).unwrap();
        // Versions at ts 40 and 50 excluded: 3 of 5 survive.
        assert_eq!(back.total_versions(), 3);
        let wm = Timestamp::from_micros(30);
        assert_eq!(back.digest_at(wm), db.digest_at(wm));
    }

    #[test]
    fn truncated_snapshot_errors_not_panics() {
        let db = sample_db();
        let mut buf = BytesMut::new();
        encode_db(&mut buf, &db, Timestamp::MAX);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut b = full.slice(..cut);
            assert!(decode_db(&mut b).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let db = sample_db();
        let mut buf = BytesMut::new();
        encode_db(&mut buf, &db, Timestamp::MAX);
        buf.put_u8(0xFF);
        assert!(decode_db(&mut buf.freeze()).is_err());
    }

    #[test]
    fn empty_db_round_trips() {
        let db = MemDb::new(0);
        let mut buf = BytesMut::new();
        encode_db(&mut buf, &db, Timestamp::MAX);
        let back = decode_db(&mut buf.freeze()).unwrap();
        assert_eq!(back.num_tables(), 0);
    }
}
