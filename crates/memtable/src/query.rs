//! Snapshot query processing over the Memtable.
//!
//! The backup node exists to answer analytical queries; this module gives
//! them an execution surface: predicate scans, projections, and
//! aggregates, all evaluated against the MVCC snapshot at a query's
//! `qts` — so a query admitted by Algorithm 3 computes over exactly the
//! primary's committed prefix at its arrival time.

use crate::table::Table;
use aets_common::{ColumnId, Row, RowKey, Timestamp, Value};
use std::cmp::Ordering;

/// Comparison operator of a filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A column filter (`col <op> literal`). Rows missing the column never
/// match.
#[derive(Debug, Clone)]
pub struct Filter {
    /// Filtered column.
    pub column: ColumnId,
    /// Comparison.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: Value,
}

impl Filter {
    /// Whether `row` satisfies the filter.
    pub fn matches(&self, row: &Row) -> bool {
        let Some((_, v)) = row.iter().find(|(c, _)| *c == self.column) else {
            return false;
        };
        let Some(ord) = compare_values(v, &self.value) else {
            return false;
        };
        match self.op {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Compares two values: numerics compare numerically across `Int`/
/// `Float`; text and bytes compare lexicographically; mixed kinds (and
/// NULLs) are incomparable.
pub fn compare_values(a: &Value, b: &Value) -> Option<Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y),
        (Value::Int(x), Value::Float(y)) => (*x as f64).partial_cmp(y),
        (Value::Float(x), Value::Int(y)) => x.partial_cmp(&(*y as f64)),
        (Value::Text(x), Value::Text(y)) => Some(x.cmp(y)),
        (Value::Bytes(x), Value::Bytes(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

/// A snapshot scan over one table.
#[derive(Debug, Clone)]
pub struct Scan {
    /// Snapshot timestamp (a query's `qts`).
    pub ts: Timestamp,
    /// Optional inclusive key range (uses the B+Tree's ordered scan).
    pub key_range: Option<(RowKey, RowKey)>,
    /// Conjunction of filters.
    pub filters: Vec<Filter>,
}

impl Scan {
    /// Full-table snapshot scan at `ts`.
    pub fn at(ts: Timestamp) -> Self {
        Self { ts, key_range: None, filters: Vec::new() }
    }

    /// Restricts to an inclusive key range.
    pub fn keys(mut self, lo: RowKey, hi: RowKey) -> Self {
        self.key_range = Some((lo, hi));
        self
    }

    /// Adds a filter.
    pub fn filter(mut self, column: ColumnId, op: CmpOp, value: Value) -> Self {
        self.filters.push(Filter { column, op, value });
        self
    }

    /// Runs the scan, invoking `f` for every matching row in key order.
    pub fn for_each<F: FnMut(RowKey, Row)>(&self, table: &Table, mut f: F) {
        let visit = |k: RowKey, row: Row, f: &mut F| {
            if self.filters.iter().all(|p| p.matches(&row)) {
                f(k, row);
            }
        };
        match self.key_range {
            Some((lo, hi)) => table.scan_range_at(lo, hi, self.ts, |k, row| visit(k, row, &mut f)),
            None => table.scan_at(self.ts, |k, row| visit(k, row, &mut f)),
        }
    }

    /// Materializes matching rows.
    pub fn collect(&self, table: &Table) -> Vec<(RowKey, Row)> {
        let mut out = Vec::new();
        self.for_each(table, |k, r| out.push((k, r)));
        out
    }

    /// Counts matching rows.
    pub fn count(&self, table: &Table) -> usize {
        let mut n = 0;
        self.for_each(table, |_, _| n += 1);
        n
    }

    /// Numeric aggregate over a column of the matching rows. Non-numeric
    /// and missing column values are skipped; returns `None` when no row
    /// contributed.
    pub fn aggregate(&self, table: &Table, column: ColumnId, agg: Aggregate) -> Option<f64> {
        let mut acc: Option<(f64, usize)> = None;
        self.for_each(table, |_, row| {
            let Some(v) = numeric(&row, column) else { return };
            acc = Some(match (acc, agg) {
                (None, _) => (v, 1),
                (Some((a, n)), Aggregate::Sum | Aggregate::Avg) => (a + v, n + 1),
                (Some((a, n)), Aggregate::Min) => (a.min(v), n + 1),
                (Some((a, n)), Aggregate::Max) => (a.max(v), n + 1),
            });
        });
        acc.map(|(a, n)| match agg {
            Aggregate::Avg => a / n as f64,
            _ => a,
        })
    }

    /// Groups matching rows by an integer column and counts each group.
    pub fn group_count(
        &self,
        table: &Table,
        column: ColumnId,
    ) -> aets_common::FxHashMap<i64, usize> {
        let mut groups = aets_common::FxHashMap::default();
        self.for_each(table, |_, row| {
            if let Some((_, Value::Int(g))) = row.iter().find(|(c, _)| *c == column) {
                *groups.entry(*g).or_insert(0) += 1;
            }
        });
        groups
    }
}

/// Aggregate kind for [`Scan::aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

fn numeric(row: &Row, column: ColumnId) -> Option<f64> {
    row.iter().find(|(c, _)| *c == column).and_then(|(_, v)| match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{OpType, Version};
    use aets_common::{TableId, TxnId};

    fn table_with_rows() -> Table {
        let t = Table::new(TableId::new(0));
        for i in 0..100u64 {
            t.apply_version(
                RowKey::new(i),
                Version {
                    txn_id: TxnId::new(i + 1),
                    commit_ts: Timestamp::from_micros((i + 1) * 10),
                    op: OpType::Insert,
                    cols: vec![
                        (ColumnId::new(0), Value::Int(i as i64 % 10)), // group
                        (ColumnId::new(1), Value::Float(i as f64)),    // amount
                        (
                            ColumnId::new(2),
                            Value::Text(if i % 2 == 0 { "even" } else { "odd" }.into()),
                        ),
                    ],
                },
            );
        }
        t
    }

    #[test]
    fn filters_compare_across_numeric_kinds() {
        let row: Row = vec![(ColumnId::new(0), Value::Int(5))];
        let f = Filter { column: ColumnId::new(0), op: CmpOp::Gt, value: Value::Float(4.5) };
        assert!(f.matches(&row));
        let f2 = Filter { column: ColumnId::new(0), op: CmpOp::Lt, value: Value::Float(4.5) };
        assert!(!f2.matches(&row));
        // Missing column and incomparable kinds never match.
        let f3 = Filter { column: ColumnId::new(9), op: CmpOp::Eq, value: Value::Int(5) };
        assert!(!f3.matches(&row));
        let f4 = Filter { column: ColumnId::new(0), op: CmpOp::Eq, value: Value::Text("5".into()) };
        assert!(!f4.matches(&row));
    }

    #[test]
    fn scan_filters_and_counts() {
        let t = table_with_rows();
        let all = Scan::at(Timestamp::MAX).count(&t);
        assert_eq!(all, 100);
        let evens = Scan::at(Timestamp::MAX)
            .filter(ColumnId::new(2), CmpOp::Eq, Value::Text("even".into()))
            .count(&t);
        assert_eq!(evens, 50);
        let conj = Scan::at(Timestamp::MAX)
            .filter(ColumnId::new(2), CmpOp::Eq, Value::Text("even".into()))
            .filter(ColumnId::new(1), CmpOp::Ge, Value::Int(50))
            .count(&t);
        assert_eq!(conj, 25);
    }

    #[test]
    fn scan_respects_snapshot_and_key_range() {
        let t = table_with_rows();
        // Only the first 30 rows were committed by ts = 305.
        let early = Scan::at(Timestamp::from_micros(305)).count(&t);
        assert_eq!(early, 30);
        let ranged = Scan::at(Timestamp::MAX).keys(RowKey::new(10), RowKey::new(19)).collect(&t);
        assert_eq!(ranged.len(), 10);
        assert_eq!(ranged[0].0, RowKey::new(10));
        // Range + snapshot compose.
        let both =
            Scan::at(Timestamp::from_micros(155)).keys(RowKey::new(10), RowKey::new(19)).count(&t);
        assert_eq!(both, 5); // keys 10..=14 committed by ts 155
    }

    #[test]
    fn aggregates() {
        let t = table_with_rows();
        let scan = Scan::at(Timestamp::MAX);
        let sum = scan.aggregate(&t, ColumnId::new(1), Aggregate::Sum).unwrap();
        assert_eq!(sum, (0..100).sum::<i64>() as f64);
        let avg = scan.aggregate(&t, ColumnId::new(1), Aggregate::Avg).unwrap();
        assert!((avg - 49.5).abs() < 1e-9);
        assert_eq!(scan.aggregate(&t, ColumnId::new(1), Aggregate::Min), Some(0.0));
        assert_eq!(scan.aggregate(&t, ColumnId::new(1), Aggregate::Max), Some(99.0));
        // Aggregating a text column yields no numeric contributions.
        assert_eq!(scan.aggregate(&t, ColumnId::new(2), Aggregate::Sum), None);
    }

    #[test]
    fn group_by_counts() {
        let t = table_with_rows();
        let groups = Scan::at(Timestamp::MAX).group_count(&t, ColumnId::new(0));
        assert_eq!(groups.len(), 10);
        assert!(groups.values().all(|n| *n == 10));
    }

    #[test]
    fn empty_results() {
        let t = table_with_rows();
        let none = Scan::at(Timestamp::MAX)
            .filter(ColumnId::new(1), CmpOp::Gt, Value::Int(1_000_000))
            .collect(&t);
        assert!(none.is_empty());
        assert_eq!(Scan::at(Timestamp::ZERO).count(&t), 0);
    }
}
