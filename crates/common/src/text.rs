//! UTF-8 string view over shared [`Bytes`] storage.
//!
//! Decoded `Value::Text` payloads are slices of the epoch buffer rather
//! than owned `String`s, so log decode allocates nothing for text columns
//! and cloning a value during replay is a reference-count bump. The
//! validity invariant is established once at construction
//! ([`Utf8Bytes::from_utf8`]) and every accessor relies on it.

use bytes::Bytes;
use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::str::Utf8Error;

/// An immutable UTF-8 string backed by shared [`Bytes`].
///
/// Invariant: the wrapped bytes are always valid UTF-8.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Utf8Bytes(Bytes);

// Hash must agree with `str` because of the `Borrow<str>` impl below
// (`Bytes`' slice hash has a different prefix/terminator scheme).
impl std::hash::Hash for Utf8Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl Utf8Bytes {
    /// Validates `bytes` as UTF-8 and wraps them without copying.
    pub fn from_utf8(bytes: Bytes) -> Result<Self, Utf8Error> {
        std::str::from_utf8(&bytes)?;
        Ok(Self(bytes))
    }

    /// The string contents.
    #[inline]
    pub fn as_str(&self) -> &str {
        // SAFETY: constructors validate UTF-8 and Bytes is immutable.
        unsafe { std::str::from_utf8_unchecked(&self.0) }
    }

    /// The raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the string is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The underlying shared buffer.
    #[inline]
    pub fn into_bytes(self) -> Bytes {
        self.0
    }
}

impl Deref for Utf8Bytes {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Utf8Bytes {
    #[inline]
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for Utf8Bytes {
    #[inline]
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Utf8Bytes {
    fn from(s: &str) -> Self {
        Self(Bytes::from(s.as_bytes().to_vec()))
    }
}

impl From<String> for Utf8Bytes {
    fn from(s: String) -> Self {
        Self(Bytes::from(s.into_bytes()))
    }
}

impl PartialEq<str> for Utf8Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Utf8Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Debug for Utf8Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Utf8Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_utf8() {
        let ok = Utf8Bytes::from_utf8(Bytes::from(b"h\xc3\xa9llo".to_vec())).unwrap();
        assert_eq!(ok.as_str(), "héllo");
        assert!(Utf8Bytes::from_utf8(Bytes::from(vec![0xFF, 0xFE])).is_err());
    }

    #[test]
    fn zero_copy_from_shared_buffer() {
        let buf = Bytes::from(b"prefix-text".to_vec());
        let s = Utf8Bytes::from_utf8(buf.slice(7..)).unwrap();
        assert_eq!(s, "text");
        // The slice shares the original allocation, no copy happened.
        assert_eq!(s.as_bytes().as_ptr(), buf[7..].as_ptr());
    }

    #[test]
    fn string_like_semantics() {
        let a = Utf8Bytes::from("abc");
        let b = Utf8Bytes::from("abd".to_string());
        assert!(a < b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Utf8Bytes::default().is_empty());
        assert_eq!(format!("{a}"), "abc");
        assert_eq!(format!("{a:?}"), "\"abc\"");
        assert_eq!(&*a, "abc");
    }

    #[test]
    fn hashes_like_str() {
        use std::collections::HashMap;
        let mut m: HashMap<Utf8Bytes, i32> = HashMap::new();
        m.insert(Utf8Bytes::from("k"), 1);
        // Borrow<str> + str-compatible Hash allow &str lookups.
        assert_eq!(m.get("k"), Some(&1));
        assert_eq!(m.get("missing"), None);
    }
}
