//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! Replay-path data structures (row-key → queue routing in C5, table-id →
//! group lookups, transaction contexts) hash small integers on the hot
//! path, where SipHash's HashDoS protection costs more than it buys on a
//! backup node that only hashes internally-generated keys. This is the
//! FxHash algorithm used by rustc, implemented locally to stay within the
//! approved dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_distinguishing() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_ne!(hash_of(42u64), hash_of(43u64));
        assert_ne!(hash_of("abc"), hash_of("abd"));
    }

    #[test]
    fn tail_bytes_affect_hash() {
        // Same 8-byte prefix, different 1-byte tail.
        assert_ne!(hash_of([1u8, 2, 3, 4, 5, 6, 7, 8, 9]), hash_of([1u8, 2, 3, 4, 5, 6, 7, 8, 10]));
        // Different lengths of zero bytes must differ (length is mixed in).
        assert_ne!(hash_of([0u8; 9]), hash_of([0u8; 10]));
    }

    #[test]
    fn map_works_with_integer_keys() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, "v");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&"v"));
    }
}
