//! Deterministic sampling helpers for workload generation.
//!
//! Everything in the reproduction that involves randomness takes an
//! explicit seed so that experiments are replayable. `rand` provides the
//! core RNG; this module adds the distributions the benchmark generators
//! need that are not in `rand` itself (Zipf, Poisson arrival processes,
//! TPC-C's NURand).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the workspace-standard seeded RNG.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Zipf-distributed sampler over `1..=n` with exponent `s`.
///
/// Uses the classic inverse-CDF-over-precomputed-weights approach; setup is
/// `O(n)` and sampling is `O(log n)`. Good enough for table- and key-skew
/// generation where `n` is at most a few million.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `1..=n` with skew `s >= 0` (`s = 0` is
    /// uniform). Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        // Guard against floating-point round-off leaving the last bucket
        // fractionally below 1.0.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Samples a rank in `1..=n` (1 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("no NaN")) {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

/// Samples an exponential inter-arrival gap (seconds) for a Poisson
/// process with the given rate (events/second).
pub fn exp_interarrival<R: Rng + ?Sized>(rng: &mut R, rate_per_sec: f64) -> f64 {
    assert!(rate_per_sec > 0.0, "arrival rate must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate_per_sec
}

/// TPC-C NURand(A, x, y): non-uniform random over `[x, y]`.
///
/// `c` is the per-run constant required by clause 2.1.6 of the spec.
pub fn nurand<R: Rng + ?Sized>(rng: &mut R, a: u64, x: u64, y: u64, c: u64) -> u64 {
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_under_seed() {
        let z = Zipf::new(100, 1.0);
        let a: Vec<usize> = {
            let mut rng = seeded_rng(7);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = seeded_rng(7);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = seeded_rng(11);
        let mut top10 = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            if z.sample(&mut rng) <= 10 {
                top10 += 1;
            }
        }
        // With s = 1.2 the top-10 ranks carry far more than the uniform 1%.
        assert!(top10 as f64 / N as f64 > 0.30, "top10 share {}", top10 as f64 / N as f64);
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = seeded_rng(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn zipf_samples_stay_in_domain() {
        let z = Zipf::new(5, 2.0);
        let mut rng = seeded_rng(5);
        for _ in 0..1000 {
            let v = z.sample(&mut rng);
            assert!((1..=5).contains(&v));
        }
    }

    #[test]
    fn poisson_gaps_average_to_inverse_rate() {
        let mut rng = seeded_rng(13);
        let rate = 50.0;
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exp_interarrival(&mut rng, rate)).sum();
        let mean = total / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.002, "mean gap {mean}");
    }

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = seeded_rng(17);
        for _ in 0..1000 {
            let v = nurand(&mut rng, 1023, 1, 3000, 123);
            assert!((1..=3000).contains(&v));
        }
    }
}
