//! Deterministic 64-bit mixing.
//!
//! Every fault harness in the workspace (WAL delivery faults, fleet-level
//! shard faults, network-transport faults) derives its schedule from this
//! one stateless mixer, keyed by a seed and a coordinate (epoch sequence,
//! `(shard, tick)` pair, byte-segment index). Pure functions of their
//! inputs, the schedules need no RNG state and are reproducible by
//! construction: the same seed always yields the same faults on every
//! machine.

/// The splitmix64 finalizer: a full-avalanche 64-bit mixer.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed draw to a uniform `f64` in `[0, 1)` using the top 53 bits.
pub fn unit_f64(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference values of the splitmix64 finalizer (seed sequence of
        // Vigna's splitmix64 starting at 0 produces these outputs).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(2), 0x9758_35DE_1C97_56CE);
    }

    #[test]
    fn unit_f64_is_in_unit_interval_and_spread() {
        let mut lo = 0usize;
        for i in 0..10_000u64 {
            let u = unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                lo += 1;
            }
        }
        assert!((4_000..6_000).contains(&lo), "half below 0.5, got {lo}");
    }
}
