//! Error type shared across the AETS workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the log codec, replay engines, and model training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A log buffer could not be decoded (context in the message).
    Codec(String),
    /// A log buffer ended before a complete record or value could be read.
    ///
    /// Static variant for the decoder's bounds checks, which sit on the
    /// per-entry hot path: constructing it never allocates or formats.
    CodecTruncated,
    /// A record or value carried an unknown type tag.
    ///
    /// Static hot-path variant, like [`Error::CodecTruncated`].
    CodecBadTag,
    /// A record or epoch failed its CRC32 integrity check (bit flip, torn
    /// write, or any in-flight corruption of the replicated log).
    ///
    /// Static hot-path variant, like [`Error::CodecTruncated`].
    CodecChecksum,
    /// The backup received an epoch out of sequence: a duplicate,
    /// reordered, or dropped delivery. Carries the raw epoch ids so the
    /// ingest resync loop can re-request without allocating.
    EpochGap {
        /// The epoch id the backup expected next.
        expected: u64,
        /// The epoch id actually delivered.
        got: u64,
    },
    /// A log stream violated a protocol invariant (e.g. a DML entry outside
    /// a BEGIN/COMMIT pair, or epochs out of order).
    Protocol(String),
    /// A replay engine hit an internal invariant violation.
    Replay(String),
    /// Invalid configuration (zero threads, empty workload, ...).
    Config(String),
    /// Model training / numeric failure.
    Numeric(String),
    /// Filesystem failure on the durability path (WAL segment store,
    /// checkpoint store). Carries the failing operation and the OS error.
    Io(String),
    /// A crash injected by the deterministic crash harness
    /// (`aets_wal::CrashClock`): the process state is considered dead from
    /// this point on and the owning store must be dropped and re-opened.
    /// Never produced in production configurations (no clock installed).
    Crash(String),
    /// The query service's bounded admission queue is full: the node is
    /// saturated and sheds load instead of queueing unboundedly. Clients
    /// should back off and retry.
    ///
    /// Static hot-path variant, like [`Error::CodecTruncated`]: returned
    /// on every rejected submission under overload, so it must not
    /// allocate.
    Overloaded,
    /// A query missed its deadline: either admission (Algorithm 3
    /// visibility) or execution did not complete within the configured
    /// per-query timeout.
    ///
    /// Static hot-path variant, like [`Error::CodecTruncated`].
    QueryTimeout,
    /// A query was cancelled by its client before completing.
    ///
    /// Static hot-path variant, like [`Error::CodecTruncated`].
    Cancelled,
    /// A query touches a quarantined table group whose watermark is
    /// frozen below the query's `qts`: the backup is in degraded mode for
    /// that group and refuses the read rather than serving a snapshot
    /// that can never become consistent.
    ///
    /// Static hot-path variant, like [`Error::CodecTruncated`].
    Degraded,
}

impl Error {
    /// Short machine-friendly category name.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Codec(_) | Error::CodecTruncated | Error::CodecBadTag | Error::CodecChecksum => {
                "codec"
            }
            Error::Protocol(_) | Error::EpochGap { .. } => "protocol",
            Error::Replay(_) => "replay",
            Error::Config(_) => "config",
            Error::Numeric(_) => "numeric",
            Error::Io(_) => "io",
            Error::Crash(_) => "crash",
            Error::Overloaded => "overloaded",
            Error::QueryTimeout => "timeout",
            Error::Cancelled => "cancelled",
            Error::Degraded => "degraded",
        }
    }

    /// Whether this error is an injected crash (see [`Error::Crash`]):
    /// the durability harness restarts the node on it instead of failing.
    pub fn is_crash(&self) -> bool {
        matches!(self, Error::Crash(_))
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::CodecTruncated => f.write_str("codec error: truncated record"),
            Error::CodecBadTag => f.write_str("codec error: unknown record or value tag"),
            Error::CodecChecksum => f.write_str("codec error: CRC32 checksum mismatch"),
            Error::EpochGap { expected, got } => {
                write!(f, "protocol error: expected epoch {expected}, got epoch {got}")
            }
            Error::Protocol(m) => write!(f, "protocol error: {m}"),
            Error::Replay(m) => write!(f, "replay error: {m}"),
            Error::Config(m) => write!(f, "config error: {m}"),
            Error::Numeric(m) => write!(f, "numeric error: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::Crash(m) => write!(f, "injected crash: {m}"),
            Error::Overloaded => {
                f.write_str("overloaded: admission queue full, back off and retry")
            }
            Error::QueryTimeout => f.write_str("query timed out"),
            Error::Cancelled => f.write_str("query cancelled"),
            Error::Degraded => {
                f.write_str("degraded: query touches a quarantined group frozen below its qts")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display_are_stable() {
        let e = Error::Codec("bad tag".into());
        assert_eq!(e.kind(), "codec");
        assert_eq!(e.to_string(), "codec error: bad tag");
        assert_eq!(Error::Config("x".into()).kind(), "config");
        assert_eq!(Error::CodecTruncated.kind(), "codec");
        assert_eq!(Error::CodecTruncated.to_string(), "codec error: truncated record");
        assert_eq!(Error::CodecBadTag.kind(), "codec");
        assert!(Error::CodecBadTag.to_string().contains("unknown"));
        assert_eq!(Error::CodecChecksum.kind(), "codec");
        assert!(Error::CodecChecksum.to_string().contains("CRC32"));
        let gap = Error::EpochGap { expected: 3, got: 5 };
        assert_eq!(gap.kind(), "protocol");
        assert_eq!(gap.to_string(), "protocol error: expected epoch 3, got epoch 5");
        assert_eq!(Error::Overloaded.kind(), "overloaded");
        assert!(Error::Overloaded.to_string().contains("admission queue full"));
        assert_eq!(Error::QueryTimeout.kind(), "timeout");
        assert_eq!(Error::Cancelled.kind(), "cancelled");
        assert_eq!(Error::Degraded.kind(), "degraded");
        assert!(Error::Degraded.to_string().contains("quarantined"));
    }
}
