//! Strongly-typed identifiers for the replication pipeline.
//!
//! All identifiers are thin newtypes over integers so they are `Copy`,
//! order-comparable, and hash quickly, while making it impossible to mix a
//! transaction id with a table id at a call site.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Wraps a raw integer.
            #[inline]
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// Returns the raw value widened to `usize` for indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// Identifier of a database table within a schema.
    TableId,
    u32
);
id_type!(
    /// Identifier of a column within a table.
    ColumnId,
    u16
);
id_type!(
    /// Transaction identifier. Monotonically increasing in primary commit
    /// order (Section III-A of the paper): comparing two `TxnId`s compares
    /// their commit order on the primary node.
    TxnId,
    u64
);
id_type!(
    /// Log sequence number: the unique, sequential identifier of a log
    /// entry in the replicated value-log stream.
    Lsn,
    u64
);
id_type!(
    /// Identifier of a replay table group produced by the grouping policy.
    GroupId,
    u32
);
id_type!(
    /// Identifier of an epoch in the replicated log stream. Epochs are
    /// consecutive and replayed strictly in order.
    EpochId,
    u64
);

/// Primary key of a record within a table.
///
/// The reproduction uses 64-bit surrogate keys: every benchmark schema maps
/// its composite primary keys onto a packed `u64` (e.g. TPC-C `order_line`
/// packs `(w_id, d_id, o_id, ol_number)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowKey(pub u64);

impl RowKey {
    /// Wraps a raw key.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw key.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RowKey({})", self.0)
    }
}

impl From<u64> for RowKey {
    #[inline]
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

/// Logical timestamp in microseconds.
///
/// Timestamps serve two roles, mirroring the paper: (a) the commit
/// timestamp stamped on every transaction by the primary, which determines
/// visibility; and (b) query arrival timestamps (`qts`). Both live on the
/// primary's clock, so they are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp (before any commit).
    pub const ZERO: Timestamp = Timestamp(0);
    /// The maximum representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Builds a timestamp from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// Builds a timestamp from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000)
    }

    /// Builds a timestamp from seconds (saturating).
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        Self((secs * 1_000_000.0).max(0.0) as u64)
    }

    /// Microseconds since the epoch origin.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch origin as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating addition of a microsecond delta.
    #[inline]
    pub const fn saturating_add(self, delta_us: u64) -> Self {
        Self(self.0.saturating_add(delta_us))
    }

    /// Saturating difference in microseconds (`self - earlier`, clamped at 0).
    #[inline]
    pub const fn saturating_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_orders_by_commit_order() {
        assert!(TxnId::new(1) < TxnId::new(2));
        assert_eq!(TxnId::new(7).raw(), 7);
        assert_eq!(TxnId::new(7).index(), 7usize);
    }

    #[test]
    fn timestamp_conversions_round_trip() {
        let ts = Timestamp::from_millis(1500);
        assert_eq!(ts.as_micros(), 1_500_000);
        assert!((ts.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Timestamp::from_secs_f64(1.5), ts);
    }

    #[test]
    fn timestamp_saturating_math() {
        let a = Timestamp::from_micros(10);
        let b = Timestamp::from_micros(25);
        assert_eq!(b.saturating_since(a), 15);
        assert_eq!(a.saturating_since(b), 0);
        assert_eq!(Timestamp::MAX.saturating_add(10), Timestamp::MAX);
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(TableId::new(3).to_string(), "TableId(3)");
        assert_eq!(RowKey::new(9).to_string(), "RowKey(9)");
        assert_eq!(Timestamp::from_micros(5).to_string(), "5us");
    }
}
