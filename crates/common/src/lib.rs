//! Shared building blocks for the AETS workspace.
//!
//! This crate defines the strongly-typed identifiers used throughout the
//! replication pipeline (tables, transactions, log sequence numbers,
//! timestamps, groups), the column [`Value`] model carried by value-log
//! entries, a fast non-cryptographic hash map, and deterministic sampling
//! helpers used by the workload generators.

pub mod error;
pub mod fxhash;
pub mod ids;
pub mod mix;
pub mod ops;
pub mod rng;
pub mod text;
pub mod value;

pub use error::{Error, Result};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use ids::{ColumnId, EpochId, GroupId, Lsn, RowKey, TableId, Timestamp, TxnId};
pub use mix::splitmix64;
pub use ops::DmlOp;
pub use text::Utf8Bytes;
pub use value::{Row, Value};
