//! Column values carried by value-log entries and stored in version chains.

use crate::ids::ColumnId;
use crate::text::Utf8Bytes;
use std::fmt;

/// A single column value.
///
/// The value-log format (Section III-A) ships pairs of column ids and their
/// *new* values; this enum is the in-memory representation of one such
/// value. Variants cover what the benchmark schemas need; `Bytes` doubles
/// as an opaque payload for synthetic wide columns.
///
/// `Text` and `Bytes` are backed by shared [`bytes::Bytes`] storage: the
/// log decoder hands out slices of the epoch buffer, so decoding a text or
/// blob column copies nothing and cloning a value is a reference-count
/// bump. The epoch buffer stays alive as long as any decoded value does.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (never NaN in generated workloads).
    Float(f64),
    /// UTF-8 string (shared-buffer view).
    Text(Utf8Bytes),
    /// Opaque byte payload (shared-buffer view).
    Bytes(bytes::Bytes),
}

impl Value {
    /// Approximate wire size in bytes, used by the log encoder to size
    /// buffers and by the allocation solver to weigh un-replayed volume.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 9,
            Value::Float(_) => 9,
            Value::Text(s) => 5 + s.len(),
            Value::Bytes(b) => 5 + b.len(),
        }
    }

    /// Returns the integer payload if this is `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload if this is `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the text payload if this is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v.into())
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v.into())
    }
}

/// The column payload of one DML log entry: the concatenation of
/// `(column id, new value)` pairs from the log format in Figure 2.
///
/// For an `insert` this is the full row; for an `update` only the modified
/// columns; for a `delete` it is empty.
pub type Row = Vec<(ColumnId, Value)>;

/// Sums the wire size of a row payload.
pub fn row_wire_size(row: &Row) -> usize {
    row.iter().map(|(_, v)| 2 + v.wire_size()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_track_payload() {
        assert_eq!(Value::Null.wire_size(), 1);
        assert_eq!(Value::Int(0).wire_size(), 9);
        assert_eq!(Value::Text("abc".into()).wire_size(), 8);
        assert_eq!(Value::from(vec![0u8; 10]).wire_size(), 15);
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn row_wire_size_sums_columns() {
        let row: Row =
            vec![(ColumnId::new(0), Value::Int(1)), (ColumnId::new(1), Value::Text("hi".into()))];
        assert_eq!(row_wire_size(&row), (2 + 9) + (2 + 7));
    }
}
