//! DML operation kinds shared by the value-log format and the Memtable.

/// The three row operations of the value-log format (Section III-A):
/// *insert*, *update*, and *delete*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmlOp {
    /// Full-row insert: the payload is the complete row image.
    Insert,
    /// Partial update: the payload holds only the modified columns.
    Update,
    /// Deletion: the payload is empty.
    Delete,
}

impl DmlOp {
    /// Stable wire tag used by the log codec.
    pub const fn tag(self) -> u8 {
        match self {
            DmlOp::Insert => 0,
            DmlOp::Update => 1,
            DmlOp::Delete => 2,
        }
    }

    /// Inverse of [`DmlOp::tag`].
    pub const fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(DmlOp::Insert),
            1 => Some(DmlOp::Update),
            2 => Some(DmlOp::Delete),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        for op in [DmlOp::Insert, DmlOp::Update, DmlOp::Delete] {
            assert_eq!(DmlOp::from_tag(op.tag()), Some(op));
        }
        assert_eq!(DmlOp::from_tag(3), None);
    }
}
