//! The shipping side of the log-shipping channel.
//!
//! [`ship_epochs`] pushes a contiguous run of encoded epochs to a
//! [`crate::ShipReceiver`] over TCP, surviving every fault the channel
//! can throw at it:
//!
//! * **Bounded in-flight window** — at most [`ShipperConfig::window`]
//!   epochs may be sent but unacked; past that the shipper *blocks*
//!   (backpressure — it never drops or skips an epoch).
//! * **Reconnect with backoff** — a broken session is re-established
//!   using the same [`RetryPolicy`] backoff curve the ingest resync loop
//!   uses, up to [`ShipperConfig::max_session_attempts`] consecutive
//!   failures.
//! * **Resume from handshake** — every new session starts by asking the
//!   receiver where its durable floor is and rewinds the send cursor to
//!   `floor + 1`. Epochs in flight when the old session died are simply
//!   shipped again; the receiver's dedup makes delivery exactly-once.
//!
//! Delivery of the whole run is confirmed by acks, not by writes: the
//! call returns only once the receiver has durably consumed every epoch
//! (cumulative ack == last sequence), so a lost tail is always detected
//! and re-shipped.

use crate::frame::{read_frame, write_frame, Frame, ReadEvent};
use aets_common::{Error, Result};
use aets_replay::RetryPolicy;
use aets_telemetry::trace::stages;
use aets_telemetry::{names, EventKind, OpenSpan, Telemetry};
use aets_wal::EncodedEpoch;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tunables of the shipping endpoint.
#[derive(Debug, Clone)]
pub struct ShipperConfig {
    /// Maximum sent-but-unacked epochs before the send loop blocks.
    pub window: usize,
    /// Backoff curve between failed connection attempts (reuses the
    /// ingest resync policy's exponential backoff).
    pub retry: RetryPolicy,
    /// Consecutive failed *connection attempts* (connect or handshake)
    /// before the shipper gives up. Resets whenever a session makes ack
    /// progress.
    pub max_session_attempts: u32,
    /// Per-connect TCP timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout of the ack reader (teardown granularity).
    pub io_timeout: Duration,
    /// A session whose ack floor makes no progress for this long while
    /// the shipper needs it to (full window, or draining the tail) is
    /// declared dead and replaced.
    pub ack_wait: Duration,
}

impl Default for ShipperConfig {
    fn default() -> Self {
        Self {
            window: 16,
            retry: RetryPolicy { max_retries: 8, base_backoff_us: 500, max_backoff_us: 50_000 },
            max_session_attempts: 64,
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(25),
            ack_wait: Duration::from_secs(2),
        }
    }
}

/// What one [`ship_epochs`] call did on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipReport {
    /// Distinct epochs delivered (the run length).
    pub epochs: u64,
    /// Epoch frames written, counting re-ships after resyncs.
    pub frames_sent: u64,
    /// Total bytes written to the wire.
    pub bytes_sent: u64,
    /// Sessions established (first connection included).
    pub connects: u64,
    /// Sessions re-established after a break.
    pub reconnects: u64,
    /// Handshakes whose resume point rewound the send cursor.
    pub resyncs: u64,
}

/// Ack state shared between the send loop and the ack-reader thread.
struct AckState {
    /// Lowest sequence not yet cumulatively acked.
    acked_next: Mutex<u64>,
    cv: Condvar,
    session_alive: AtomicBool,
}

impl AckState {
    /// Current floor, or `None` if the lock is poisoned (treated as a
    /// dead session by callers).
    fn floor(&self) -> Option<u64> {
        self.acked_next.lock().ok().map(|g| *g)
    }

    /// Blocks until `pred(acked floor)` holds, the session dies, or
    /// `timeout` passes without any floor progress. Returns the floor.
    fn wait_progress(&self, timeout: Duration, pred: impl Fn(u64) -> bool) -> Option<u64> {
        let mut guard = self.acked_next.lock().ok()?;
        let mut last = *guard;
        let mut deadline = Instant::now() + timeout;
        loop {
            if pred(*guard) {
                return Some(*guard);
            }
            if !self.session_alive.load(Ordering::Relaxed) {
                return Some(*guard);
            }
            if *guard > last {
                // Progress: the receiver is alive, extend the deadline.
                last = *guard;
                deadline = Instant::now() + timeout;
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(*guard);
            }
            let (g, _) = self.cv.wait_timeout(guard, deadline - now).ok()?;
            guard = g;
        }
    }
}

fn connect(addr: SocketAddr, cfg: &ShipperConfig) -> Result<TcpStream> {
    let conn = TcpStream::connect_timeout(&addr, cfg.connect_timeout)
        .map_err(|e| Error::Io(format!("connect {addr}: {e}")))?;
    conn.set_read_timeout(Some(cfg.io_timeout)).map_err(|e| Error::Io(e.to_string()))?;
    conn.set_nodelay(true).map_err(|e| Error::Io(e.to_string()))?;
    Ok(conn)
}

/// Reads acks off the session and advances the shared floor; flips
/// `session_alive` off on EOF, decode failure, or socket error. Counter
/// handles are passed in because the thread outlives the caller's
/// `&Telemetry` borrow.
fn ack_reader(
    mut conn: TcpStream,
    state: &Arc<AckState>,
    bytes_recv: &aets_telemetry::Counter,
    frame_errors: &aets_telemetry::Counter,
) {
    loop {
        if !state.session_alive.load(Ordering::Relaxed) {
            break;
        }
        match read_frame(&mut conn) {
            Ok(ReadEvent::Idle) => continue,
            Ok(ReadEvent::Frame(Frame::Ack { last_durable_epoch }, n)) => {
                bytes_recv.add(n as u64);
                if let Ok(mut g) = state.acked_next.lock() {
                    *g = (*g).max(last_durable_epoch + 1);
                }
                state.cv.notify_all();
            }
            Ok(ReadEvent::Eof) | Ok(ReadEvent::Frame(..)) => break,
            Err(_) => {
                frame_errors.inc();
                break;
            }
        }
    }
    state.session_alive.store(false, Ordering::Relaxed);
    state.cv.notify_all();
    let _ = conn.shutdown(std::net::Shutdown::Both);
}

/// Ships `epochs` (a contiguous run of sequence ids) to the receiver at
/// `addr`, blocking until every epoch is acked durable. Returns the wire
/// activity; errors only when the channel stays down past the configured
/// attempt budget.
pub fn ship_epochs(
    addr: SocketAddr,
    epochs: &[EncodedEpoch],
    cfg: &ShipperConfig,
    tel: &Telemetry,
) -> Result<ShipReport> {
    if cfg.window == 0 {
        return Err(Error::Config("shipper window must be positive".into()));
    }
    let Some(first) = epochs.first() else {
        return Ok(ShipReport::default());
    };
    let first_seq = first.id.raw();
    for (i, e) in epochs.iter().enumerate() {
        if e.id.raw() != first_seq + i as u64 {
            return Err(Error::Config(format!(
                "shipped run must be contiguous: epoch[{i}] is {} not {}",
                e.id.raw(),
                first_seq + i as u64
            )));
        }
    }
    let end_seq = first_seq + epochs.len() as u64; // one past the last

    let mut report = ShipReport { epochs: epochs.len() as u64, ..Default::default() };
    let mut attempts: u32 = 0;
    // Highest cursor any session reached; a later resume below it is a
    // resync (those epochs travel twice).
    let mut high_cursor = first_seq;
    // Open `net_ship` spans of epochs sent but not yet known durable,
    // keyed by (seq, span id). They outlive a single session: an ack
    // lost with the connection resurfaces as a later handshake's resume
    // floor, which still closes them. A resync can send one epoch twice
    // (the receiver dedups); both attempts stay open, because the sender
    // cannot know which delivery admitted — the floor closes both, and
    // the receiver's ring holds the id of the one that landed.
    let mut ship_spans: BTreeMap<(u64, u64), OpenSpan> = BTreeMap::new();

    loop {
        if attempts > 0 {
            if attempts >= cfg.max_session_attempts {
                return Err(Error::Io(format!(
                    "log shipping to {addr} failed after {attempts} session attempts"
                )));
            }
            std::thread::sleep(cfg.retry.backoff(attempts.min(cfg.retry.max_retries.max(1))));
        }
        attempts += 1;

        // --- Connect + handshake. ---
        let mut conn = match connect(addr, cfg) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let hello = Frame::Hello { first_seq, stream_epochs: epochs.len() as u64 };
        let Ok(n) = write_frame(&mut conn, &hello) else { continue };
        report.bytes_sent += n as u64;
        tel.registry().counter(names::NET_BYTES_SENT).add(n as u64);
        let resume = {
            let deadline = Instant::now() + cfg.ack_wait;
            loop {
                match read_frame(&mut conn) {
                    Ok(ReadEvent::Frame(Frame::Resume { last_durable_epoch }, _)) => {
                        break Some(last_durable_epoch)
                    }
                    Ok(ReadEvent::Idle) if Instant::now() < deadline => continue,
                    _ => break None,
                }
            }
        };
        let Some(resume_floor) = resume else { continue };

        report.connects += 1;
        tel.registry().counter(names::NET_CONNECTS).inc();
        if report.connects > 1 {
            report.reconnects += 1;
            tel.registry().counter(names::NET_RECONNECTS).inc();
            tel.event(EventKind::NetReconnect { attempts: attempts - 1 });
        }

        let cursor = match resume_floor {
            Some(d) => (d + 1).clamp(first_seq, end_seq),
            None => first_seq,
        };
        // The resume floor is the receiver's durable word: spans it
        // covers delivered (their ack just died with the old socket).
        // Spans above it stay open — the epoch may already sit in the
        // receiver's admission buffer and turn durable without another
        // trip, or the re-ship below supersedes the span in place.
        finish_acked_ship_spans(&mut ship_spans, cursor, tel);
        if cursor < high_cursor {
            report.resyncs += 1;
            tel.registry().counter(names::NET_RESYNCS).inc();
            tel.event(EventKind::NetResync { resume_seq: cursor, rewound: high_cursor - cursor });
        }
        // The session made it through a handshake: reset the failure
        // budget only once it also moves the ack floor (below).
        let state = Arc::new(AckState {
            acked_next: Mutex::new(cursor),
            cv: Condvar::new(),
            session_alive: AtomicBool::new(true),
        });
        let reader_conn = match conn.try_clone() {
            Ok(c) => c,
            Err(_) => continue,
        };
        let reader_state = state.clone();
        let bytes_recv = tel.registry().counter(names::NET_BYTES_RECV);
        let frame_errors = tel.registry().counter(names::NET_FRAME_ERRORS);
        let reader = std::thread::spawn(move || {
            ack_reader(reader_conn, &reader_state, &bytes_recv, &frame_errors);
        });

        let baseline_floor = cursor;
        let (session_ok, sent_cursor) = run_session(
            &mut conn,
            epochs,
            first_seq,
            cursor,
            end_seq,
            cfg,
            tel,
            &state,
            &mut report,
            &mut ship_spans,
        );
        // Tear the reader down with the session.
        state.session_alive.store(false, Ordering::Relaxed);
        state.cv.notify_all();
        let _ = conn.shutdown(std::net::Shutdown::Both);
        let _ = reader.join();

        let floor = state.floor().unwrap_or(baseline_floor);
        // Acks that raced the session's death still count: those epochs
        // were delivered, so their ship spans close rather than vanish.
        // Truly unacked spans drop — the resync re-ships under fresh ids.
        finish_acked_ship_spans(&mut ship_spans, floor, tel);
        high_cursor = high_cursor.max(sent_cursor).max(floor);
        if session_ok && floor >= end_seq {
            return Ok(report);
        }
        if floor > baseline_floor {
            // The receiver durably consumed something this session:
            // that is progress, so the failure budget resets.
            attempts = 0;
        }
    }
}

/// Closes every pending `net_ship` span whose epoch the cumulative ack
/// floor has passed: ship → ack is the span, not ship → write.
fn finish_acked_ship_spans(
    pending: &mut BTreeMap<(u64, u64), OpenSpan>,
    floor: u64,
    tel: &Telemetry,
) {
    let live = pending.split_off(&(floor, 0));
    for (_, span) in std::mem::replace(pending, live) {
        span.finish(tel.spans());
    }
}

/// The write loop of one live session. Returns whether every epoch was
/// written *and* acked within this session, plus the highest send
/// cursor reached (a later resume below it is a resync: those epochs
/// travel twice). Still-open ship spans stay in `ship_spans` so acks
/// that outlive the session (late-racing frames, the next handshake's
/// resume floor) can close them.
#[allow(clippy::too_many_arguments)]
fn run_session(
    conn: &mut TcpStream,
    epochs: &[EncodedEpoch],
    first_seq: u64,
    mut cursor: u64,
    end_seq: u64,
    cfg: &ShipperConfig,
    tel: &Telemetry,
    state: &Arc<AckState>,
    report: &mut ShipReport,
    ship_spans: &mut BTreeMap<(u64, u64), OpenSpan>,
) -> (bool, u64) {
    while cursor < end_seq {
        // Backpressure: sending `cursor` is allowed only while fewer than
        // `window` epochs are in flight, i.e. once the cumulative ack
        // floor has reached `cursor + 1 - window` (trivially true for the
        // first `window` epochs).
        let need = (cursor + 1).saturating_sub(cfg.window as u64);
        let floor = state.wait_progress(cfg.ack_wait, |acked| acked >= need).unwrap_or(0);
        if !state.session_alive.load(Ordering::Relaxed) {
            return (false, cursor);
        }
        if floor < need {
            // No ack progress for a whole ack_wait while the window was
            // full: the session is wedged (half-open peer).
            return (false, cursor);
        }
        finish_acked_ship_spans(ship_spans, floor, tel);
        tel.registry()
            .histogram(names::NET_ACK_WINDOW_DEPTH)
            .record_micros(cursor.saturating_sub(floor));
        let e = &epochs[(cursor - first_seq) as usize];
        // A sampled epoch gets its trace context shipped right before it
        // in an optional extension frame old receivers skip.
        if let Some(span) = tel.spans().begin(cursor, stages::NET_SHIP, None, None) {
            let trace = Frame::Trace {
                epoch_seq: cursor,
                trace_id: span.id().0,
                ship_start_us: span.start_us(),
            };
            match write_frame(conn, &trace) {
                Ok(n) => {
                    report.bytes_sent += n as u64;
                    tel.registry().counter(names::NET_BYTES_SENT).add(n as u64);
                    ship_spans.insert((cursor, span.id().0), span);
                }
                Err(_) => return (false, cursor),
            }
        }
        match write_frame(conn, &Frame::Epoch(e.clone())) {
            Ok(n) => {
                report.bytes_sent += n as u64;
                report.frames_sent += 1;
                tel.registry().counter(names::NET_BYTES_SENT).add(n as u64);
                tel.registry().counter(names::NET_EPOCHS_SHIPPED).inc();
            }
            Err(_) => return (false, cursor),
        }
        cursor += 1;
    }
    // Drain the tail: wait for the cumulative ack to reach the end.
    let floor = state.wait_progress(cfg.ack_wait, |acked| acked >= end_seq).unwrap_or(0);
    finish_acked_ship_spans(ship_spans, floor, tel);
    if floor >= end_seq {
        // Fully acked: best-effort goodbye while the socket is still up
        // (a lost SHUTDOWN costs nothing — the stream is durable).
        if let Ok(n) = write_frame(conn, &Frame::Shutdown) {
            report.bytes_sent += n as u64;
            tel.registry().counter(names::NET_BYTES_SENT).add(n as u64);
        }
        return (true, cursor);
    }
    (false, cursor)
}
