//! Trace capture and deterministic replay.
//!
//! A *trace* is a JSONL file recording everything that crossed the
//! node's boundary — epoch deliveries and analytical queries, each
//! stamped with its arrival time — plus a final summary line. Capturing
//! a trace during a live (or chaotic) run turns an irreproducible
//! network interleaving into a replayable artifact: feed it back through
//! [`TraceReplayer`] and the engine must reproduce the same final
//! `global_cmt_ts` and byte-identical query results, in any of three
//! modes:
//!
//! * [`ReplayMode::Sequential`] — events in recorded order, no clock:
//!   the default for CI (fast and strictly deterministic).
//! * [`ReplayMode::Paced`] — sleeps out the recorded inter-event gaps
//!   (optionally time-scaled) to reproduce the temporal shape.
//! * [`ReplayMode::AsFastAsPossible`] — bulk-ingests every epoch first,
//!   then runs the queries at their recorded `qts`. Under MVCC with GC
//!   off this provably yields the same snapshots: each query reads at
//!   its recorded timestamp regardless of when later epochs landed.
//!
//! The format is line-oriented JSON built and parsed with the tiny
//! hand-rolled codec below (the workspace builds offline — no JSON
//! dependency). Epoch payloads travel hex-encoded with their CRC, so a
//! trace is also integrity-checked end to end.

use aets_common::{ColumnId, EpochId, Error, FxHasher, Result, RowKey, TableId, Timestamp};
use aets_memtable::{Aggregate, MemDb};
use aets_replay::{
    eval_spec, OutputKind, QueryOutput, QuerySpec, QueryTarget, ReplayEngine, SerialEngine,
    VisibilityBoard,
};
use aets_wal::{crc32, EncodedEpoch};
use std::hash::Hasher;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;
use std::time::Duration;

/// One recorded boundary event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An epoch delivery.
    Epoch {
        /// Arrival time on the recorder's clock (micros).
        at_us: u64,
        /// The delivered epoch.
        epoch: EncodedEpoch,
    },
    /// An analytical query and its recorded result.
    Query {
        /// Arrival time on the recorder's clock (micros).
        at_us: u64,
        /// Snapshot timestamp the query read at.
        qts_us: u64,
        /// Scanned table.
        table: TableId,
        /// Optional inclusive key range.
        key_range: Option<(u64, u64)>,
        /// What the query computed (see [`render_output_kind`]).
        output: String,
        /// The rendered result (see [`render_result`]) — the byte-exact
        /// string replay must reproduce.
        result: String,
    },
    /// The summary line closing a trace.
    End {
        /// Final `global_cmt_ts` watermark (micros).
        global_cmt_ts_us: u64,
        /// Epoch events recorded.
        epochs: u64,
        /// Query events recorded.
        queries: u64,
    },
}

impl TraceEvent {
    /// Recorder-clock arrival time; the `end` line reports 0.
    pub fn at_us(&self) -> u64 {
        match self {
            TraceEvent::Epoch { at_us, .. } | TraceEvent::Query { at_us, .. } => *at_us,
            TraceEvent::End { .. } => 0,
        }
    }
}

/// Renders an [`OutputKind`] as the trace's stable `output` token.
pub fn render_output_kind(kind: &OutputKind) -> Result<String> {
    Ok(match kind {
        OutputKind::Count => "count".to_string(),
        OutputKind::Rows => "rows".to_string(),
        OutputKind::AggregateCol { column, agg } => {
            format!("agg:{}:{:?}", column.raw(), agg)
        }
    })
}

fn parse_output_kind(token: &str) -> Result<OutputKind> {
    if token == "count" {
        return Ok(OutputKind::Count);
    }
    if token == "rows" {
        return Ok(OutputKind::Rows);
    }
    if let Some(rest) = token.strip_prefix("agg:") {
        let (col, kind) = rest
            .split_once(':')
            .ok_or_else(|| Error::Codec(format!("trace output token {token:?}")))?;
        let column = ColumnId::new(
            col.parse::<u16>().map_err(|_| Error::Codec(format!("trace agg column {col:?}")))?,
        );
        let agg = match kind {
            "Sum" => Aggregate::Sum,
            "Avg" => Aggregate::Avg,
            "Min" => Aggregate::Min,
            "Max" => Aggregate::Max,
            other => return Err(Error::Codec(format!("trace agg kind {other:?}"))),
        };
        return Ok(OutputKind::AggregateCol { column, agg });
    }
    Err(Error::Codec(format!("trace output token {token:?}")))
}

/// Renders a [`QueryOutput`] as the trace's stable, comparison-ready
/// `result` string. Row sets are compressed to a length plus an
/// [`FxHasher`] digest of their `Debug` text — deterministic (FxHash has
/// no random state) and byte-comparable without storing every row.
pub fn render_result(out: &QueryOutput) -> String {
    match out {
        QueryOutput::Count(n) => format!("count={n}"),
        QueryOutput::Aggregate(v) => format!("agg={v:?}"),
        QueryOutput::Rows(rows) => {
            let mut h = FxHasher::default();
            for (k, row) in rows {
                h.write(format!("{k:?}={row:?};").as_bytes());
            }
            format!("rows={};fxhash={:016x}", rows.len(), h.finish())
        }
    }
}

// --- minimal JSON line codec -------------------------------------------

fn esc(s: &str) -> String {
    // The only strings we emit are hex payloads and the fixed tokens
    // above; escape defensively anyway.
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(Error::Codec("odd-length hex payload".into()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| Error::Codec("non-hex byte in trace payload".into()))
        })
        .collect()
}

/// Extracts `"field":<u64>` from a JSON line.
fn field_u64(line: &str, field: &str) -> Result<u64> {
    let pat = format!("\"{field}\":");
    let at = line
        .find(&pat)
        .ok_or_else(|| Error::Codec(format!("trace line missing field {field:?}")))?;
    let rest = &line[at + pat.len()..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().map_err(|_| Error::Codec(format!("trace field {field:?} not a number")))
}

fn field_u64_opt(line: &str, field: &str) -> Option<u64> {
    field_u64(line, field).ok()
}

/// Extracts `"field":"<string>"` from a JSON line (no escapes inside the
/// strings this codec emits except `\"` and `\\`).
fn field_str(line: &str, field: &str) -> Result<String> {
    let pat = format!("\"{field}\":\"");
    let at = line
        .find(&pat)
        .ok_or_else(|| Error::Codec(format!("trace line missing field {field:?}")))?;
    let rest = &line[at + pat.len()..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next() {
                Some(e) => out.push(e),
                None => break,
            },
            c => out.push(c),
        }
    }
    Err(Error::Codec(format!("unterminated string field {field:?}")))
}

fn encode_event(e: &TraceEvent) -> String {
    match e {
        TraceEvent::Epoch { at_us, epoch } => format!(
            "{{\"kind\":\"epoch\",\"at_us\":{},\"seq\":{},\"txns\":{},\"max_commit_ts_us\":{},\"crc32\":{},\"bytes\":\"{}\"}}",
            at_us,
            epoch.id.raw(),
            epoch.txn_count,
            epoch.max_commit_ts.as_micros(),
            epoch.crc32,
            hex_encode(&epoch.bytes),
        ),
        TraceEvent::Query { at_us, qts_us, table, key_range, output, result } => {
            let range = key_range
                .map(|(lo, hi)| format!(",\"lo\":{lo},\"hi\":{hi}"))
                .unwrap_or_default();
            format!(
                "{{\"kind\":\"query\",\"at_us\":{},\"qts_us\":{},\"table\":{}{},\"output\":\"{}\",\"result\":\"{}\"}}",
                at_us,
                qts_us,
                table.raw(),
                range,
                esc(output),
                esc(result),
            )
        }
        TraceEvent::End { global_cmt_ts_us, epochs, queries } => format!(
            "{{\"kind\":\"end\",\"global_cmt_ts_us\":{global_cmt_ts_us},\"epochs\":{epochs},\"queries\":{queries}}}"
        ),
    }
}

fn decode_event(line: &str) -> Result<TraceEvent> {
    let kind = field_str(line, "kind")?;
    match kind.as_str() {
        "epoch" => {
            let bytes = bytes::Bytes::from(hex_decode(&field_str(line, "bytes")?)?);
            let epoch = EncodedEpoch {
                id: EpochId::new(field_u64(line, "seq")?),
                txn_count: field_u64(line, "txns")? as usize,
                max_commit_ts: Timestamp::from_micros(field_u64(line, "max_commit_ts_us")?),
                crc32: field_u64(line, "crc32")? as u32,
                bytes,
            };
            // A trace is a durability artifact: verify on the way in.
            if crc32(&epoch.bytes) != epoch.crc32 {
                return Err(Error::CodecChecksum);
            }
            Ok(TraceEvent::Epoch { at_us: field_u64(line, "at_us")?, epoch })
        }
        "query" => {
            let lo = field_u64_opt(line, "lo");
            let hi = field_u64_opt(line, "hi");
            let key_range = match (lo, hi) {
                (Some(lo), Some(hi)) => Some((lo, hi)),
                _ => None,
            };
            Ok(TraceEvent::Query {
                at_us: field_u64(line, "at_us")?,
                qts_us: field_u64(line, "qts_us")?,
                table: TableId::new(field_u64(line, "table")? as u32),
                key_range,
                output: field_str(line, "output")?,
                result: field_str(line, "result")?,
            })
        }
        "end" => Ok(TraceEvent::End {
            global_cmt_ts_us: field_u64(line, "global_cmt_ts_us")?,
            epochs: field_u64(line, "epochs")?,
            queries: field_u64(line, "queries")?,
        }),
        other => Err(Error::Codec(format!("unknown trace event kind {other:?}"))),
    }
}

// --- recorder -----------------------------------------------------------

/// Streams boundary events into a JSONL trace file.
#[derive(Debug)]
pub struct TraceRecorder {
    out: BufWriter<std::fs::File>,
    epochs: u64,
    queries: u64,
    global_cmt_ts_us: u64,
}

impl TraceRecorder {
    /// Creates (truncates) the trace file at `path`.
    pub fn create(path: &Path) -> Result<TraceRecorder> {
        let f = std::fs::File::create(path)
            .map_err(|e| Error::Io(format!("creating trace {}: {e}", path.display())))?;
        Ok(TraceRecorder { out: BufWriter::new(f), epochs: 0, queries: 0, global_cmt_ts_us: 0 })
    }

    fn write_line(&mut self, line: &str) -> Result<()> {
        self.out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .map_err(|e| Error::Io(format!("writing trace: {e}")))
    }

    /// Records an epoch delivery at recorder time `at_us`.
    pub fn record_epoch(&mut self, at_us: u64, epoch: &EncodedEpoch) -> Result<()> {
        self.epochs += 1;
        self.global_cmt_ts_us = self.global_cmt_ts_us.max(epoch.max_commit_ts.as_micros());
        self.write_line(&encode_event(&TraceEvent::Epoch { at_us, epoch: epoch.clone() }))
    }

    /// Records a query and the result it produced. Filtered queries are
    /// refused ([`Error::Config`]): the trace format captures the
    /// scan-shaped workload of the experiments, and silently dropping
    /// filters would record a *different* query than the one that ran.
    pub fn record_query(
        &mut self,
        at_us: u64,
        qts: Timestamp,
        spec: &QuerySpec,
        result: &QueryOutput,
    ) -> Result<()> {
        if !spec.filters.is_empty() {
            return Err(Error::Config("trace capture does not support filtered queries".into()));
        }
        self.queries += 1;
        self.write_line(&encode_event(&TraceEvent::Query {
            at_us,
            qts_us: qts.as_micros(),
            table: spec.table,
            key_range: spec.key_range.map(|(lo, hi)| (lo.raw(), hi.raw())),
            output: render_output_kind(&spec.output)?,
            result: render_result(result),
        }))
    }

    /// Writes the summary line and flushes. Returns the recorded final
    /// watermark.
    pub fn finish(mut self) -> Result<u64> {
        let end = TraceEvent::End {
            global_cmt_ts_us: self.global_cmt_ts_us,
            epochs: self.epochs,
            queries: self.queries,
        };
        let line = encode_event(&end);
        self.write_line(&line)?;
        self.out.flush().map_err(|e| Error::Io(format!("flushing trace: {e}")))?;
        Ok(self.global_cmt_ts_us)
    }
}

// --- replayer -----------------------------------------------------------

/// How [`TraceReplayer::run`] schedules the recorded events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayMode {
    /// Recorded order, no clock.
    Sequential,
    /// Recorded order, sleeping out the inter-event gaps divided by
    /// `time_scale` (2.0 replays twice as fast).
    Paced {
        /// Speed-up factor (must be positive).
        time_scale: f64,
    },
    /// All epochs first, then all queries at their recorded `qts`.
    AsFastAsPossible,
}

/// What a replay run observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Epochs re-ingested.
    pub epochs: u64,
    /// Queries re-executed.
    pub queries: u64,
    /// Queries whose rendered result matched the recording byte for
    /// byte.
    pub queries_matched: u64,
    /// `(query index, recorded, replayed)` for each divergence.
    pub mismatches: Vec<(u64, String, String)>,
    /// Final `global_cmt_ts` the sink reported.
    pub final_global_cmt_ts_us: u64,
    /// Final watermark the recording claimed.
    pub recorded_global_cmt_ts_us: u64,
}

impl TraceReport {
    /// Whether the replay reproduced the recording exactly: every query
    /// result matched and the final watermark agrees.
    pub fn reproduced(&self) -> bool {
        self.mismatches.is_empty() && self.final_global_cmt_ts_us == self.recorded_global_cmt_ts_us
    }
}

/// What a trace replays *into*: something that can ingest an epoch and
/// answer a recorded query at a snapshot timestamp.
pub trait TraceSink {
    /// Ingests one epoch (in recorded order).
    fn ingest(&mut self, epoch: &EncodedEpoch) -> Result<()>;
    /// Executes a recorded query at snapshot `qts`.
    fn query(
        &mut self,
        qts: Timestamp,
        table: TableId,
        key_range: Option<(RowKey, RowKey)>,
        output: &OutputKind,
    ) -> Result<QueryOutput>;
    /// The sink's current `global_cmt_ts` (micros).
    fn global_cmt_ts_us(&self) -> u64;
}

/// The built-in sink: serial replay into a fresh [`MemDb`] +
/// [`VisibilityBoard`], queries served by MVCC snapshot scans. GC never
/// runs, so recorded `qts` snapshots stay reachable in any replay mode.
#[derive(Debug)]
pub struct EngineSink {
    db: MemDb,
    board: VisibilityBoard,
}

impl EngineSink {
    /// A sink over `num_tables` empty tables.
    pub fn new(num_tables: usize) -> EngineSink {
        EngineSink { db: MemDb::new(num_tables), board: VisibilityBoard::builder(1).build() }
    }

    /// The sink's database (for post-replay assertions).
    pub fn db(&self) -> &MemDb {
        &self.db
    }
}

/// The sink serves queries through the same generic surface as a live
/// node or a fleet: `safe_ts` is the board watermark and specs evaluate
/// against the MVCC snapshot (GC never runs, so every recorded `qts`
/// stays reachable and admission never waits).
impl QueryTarget for EngineSink {
    fn safe_ts(&self) -> Timestamp {
        self.board.global_cmt_ts()
    }

    fn query_at(&self, qts: Timestamp, specs: &[QuerySpec]) -> Result<Vec<QueryOutput>> {
        Ok(specs.iter().map(|s| eval_spec(&self.db, s, qts)).collect())
    }
}

impl TraceSink for EngineSink {
    fn ingest(&mut self, epoch: &EncodedEpoch) -> Result<()> {
        SerialEngine.replay(std::slice::from_ref(epoch), &self.db, &self.board).map(|_| ())
    }

    fn query(
        &mut self,
        qts: Timestamp,
        table: TableId,
        key_range: Option<(RowKey, RowKey)>,
        output: &OutputKind,
    ) -> Result<QueryOutput> {
        let spec = QuerySpec {
            table,
            key_range,
            filters: Vec::new(),
            output: output.clone(),
            timeout: None,
        };
        self.query_one(qts, spec)
    }

    fn global_cmt_ts_us(&self) -> u64 {
        self.safe_ts().as_micros()
    }
}

/// Replays a recorded trace against a [`TraceSink`].
#[derive(Debug)]
pub struct TraceReplayer {
    events: Vec<TraceEvent>,
    end: Option<(u64, u64, u64)>,
}

impl TraceReplayer {
    /// Loads and validates the trace at `path`.
    pub fn open(path: &Path) -> Result<TraceReplayer> {
        let f = std::fs::File::open(path)
            .map_err(|e| Error::Io(format!("opening trace {}: {e}", path.display())))?;
        let mut events = Vec::new();
        let mut end = None;
        for line in std::io::BufReader::new(f).lines() {
            let line = line.map_err(|e| Error::Io(format!("reading trace: {e}")))?;
            if line.trim().is_empty() {
                continue;
            }
            if end.is_some() {
                return Err(Error::Codec("trace has events after its end line".into()));
            }
            match decode_event(&line)? {
                TraceEvent::End { global_cmt_ts_us, epochs, queries } => {
                    end = Some((global_cmt_ts_us, epochs, queries));
                }
                e => events.push(e),
            }
        }
        Ok(TraceReplayer { events, end })
    }

    /// The loaded events (excluding the end line).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Replays into `sink` under `mode`, comparing every query result
    /// against the recording.
    pub fn run(&self, mode: ReplayMode, sink: &mut dyn TraceSink) -> Result<TraceReport> {
        if let ReplayMode::Paced { time_scale } = mode {
            if time_scale <= 0.0 {
                return Err(Error::Config("paced replay needs a positive time scale".into()));
            }
        }
        let mut report = TraceReport::default();
        if let Some((wm, epochs, queries)) = self.end {
            report.recorded_global_cmt_ts_us = wm;
            let (got_e, got_q) = self.counts();
            if (epochs, queries) != (got_e, got_q) {
                return Err(Error::Codec(format!(
                    "trace end line claims {epochs} epochs / {queries} queries, found {got_e} / {got_q}"
                )));
            }
        }
        match mode {
            ReplayMode::Sequential => {
                for e in &self.events {
                    self.step(e, sink, &mut report)?;
                }
            }
            ReplayMode::Paced { time_scale } => {
                let mut prev_at: Option<u64> = None;
                for e in &self.events {
                    if let Some(p) = prev_at {
                        let gap = e.at_us().saturating_sub(p) as f64 / time_scale;
                        if gap >= 1.0 {
                            std::thread::sleep(Duration::from_micros(gap as u64));
                        }
                    }
                    prev_at = Some(e.at_us());
                    self.step(e, sink, &mut report)?;
                }
            }
            ReplayMode::AsFastAsPossible => {
                for e in &self.events {
                    if matches!(e, TraceEvent::Epoch { .. }) {
                        self.step(e, sink, &mut report)?;
                    }
                }
                for e in &self.events {
                    if matches!(e, TraceEvent::Query { .. }) {
                        self.step(e, sink, &mut report)?;
                    }
                }
            }
        }
        report.final_global_cmt_ts_us = sink.global_cmt_ts_us();
        Ok(report)
    }

    fn counts(&self) -> (u64, u64) {
        let e = self.events.iter().filter(|e| matches!(e, TraceEvent::Epoch { .. })).count();
        let q = self.events.iter().filter(|e| matches!(e, TraceEvent::Query { .. })).count();
        (e as u64, q as u64)
    }

    fn step(
        &self,
        event: &TraceEvent,
        sink: &mut dyn TraceSink,
        report: &mut TraceReport,
    ) -> Result<()> {
        match event {
            TraceEvent::Epoch { epoch, .. } => {
                sink.ingest(epoch)?;
                report.epochs += 1;
            }
            TraceEvent::Query { qts_us, table, key_range, output, result, .. } => {
                let kind = parse_output_kind(output)?;
                let kr = key_range.map(|(lo, hi)| (RowKey::new(lo), RowKey::new(hi)));
                let got = sink.query(Timestamp::from_micros(*qts_us), *table, kr, &kind)?;
                let rendered = render_result(&got);
                let idx = report.queries;
                report.queries += 1;
                if rendered == *result {
                    report.queries_matched += 1;
                } else {
                    report.mismatches.push((idx, result.clone(), rendered));
                }
            }
            TraceEvent::End { .. } => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_wal::{batch_into_epochs, encode_epoch};
    use aets_workloads::tpcc::{self, TpccConfig};

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aets-trace-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn stream() -> (Vec<EncodedEpoch>, usize) {
        let w = tpcc::generate(&TpccConfig { num_txns: 600, warehouses: 2, ..Default::default() });
        let n = w.num_tables();
        let epochs =
            batch_into_epochs(w.txns, 64).unwrap().iter().map(encode_epoch).collect::<Vec<_>>();
        (epochs, n)
    }

    fn record_reference(path: &Path, epochs: &[EncodedEpoch], n: usize) -> u64 {
        let mut rec = TraceRecorder::create(path).unwrap();
        let mut live = EngineSink::new(n);
        let mut at = 0u64;
        for (i, e) in epochs.iter().enumerate() {
            at += 100;
            live.ingest(e).unwrap();
            rec.record_epoch(at, e).unwrap();
            // A query after every other epoch, at the live watermark.
            if i % 2 == 1 {
                at += 10;
                let qts = Timestamp::from_micros(live.global_cmt_ts_us());
                for spec in [
                    QuerySpec::count(TableId::new((i % n) as u32)),
                    QuerySpec::rows(TableId::new((i % n) as u32))
                        .keys(RowKey::new(0), RowKey::new(u64::MAX / 2)),
                    QuerySpec::aggregate(
                        TableId::new((i % n) as u32),
                        ColumnId::new(0),
                        Aggregate::Sum,
                    ),
                ] {
                    let out = live.query(qts, spec.table, spec.key_range, &spec.output).unwrap();
                    rec.record_query(at, qts, &spec, &out).unwrap();
                }
            }
        }
        rec.finish().unwrap()
    }

    #[test]
    fn record_then_replay_reproduces_in_every_mode() {
        let dir = scratch("modes");
        let path = dir.join("run.jsonl");
        let (epochs, n) = stream();
        let recorded_wm = record_reference(&path, &epochs, n);
        assert!(recorded_wm > 0);

        let replayer = TraceReplayer::open(&path).unwrap();
        for mode in [
            ReplayMode::Sequential,
            ReplayMode::Paced { time_scale: 1_000.0 },
            ReplayMode::AsFastAsPossible,
        ] {
            let mut sink = EngineSink::new(n);
            let report = replayer.run(mode, &mut sink).unwrap();
            assert!(
                report.reproduced(),
                "{mode:?} diverged: {:?} (wm {} vs {})",
                report.mismatches.first(),
                report.final_global_cmt_ts_us,
                report.recorded_global_cmt_ts_us
            );
            assert_eq!(report.final_global_cmt_ts_us, recorded_wm);
            assert!(report.queries > 0 && report.queries_matched == report.queries);
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn divergence_is_detected() {
        let dir = scratch("diverge");
        let path = dir.join("run.jsonl");
        let (epochs, n) = stream();
        record_reference(&path, &epochs, n);

        // A sink with a table missing diverges (its scans return empty).
        struct LossySink(EngineSink);
        impl TraceSink for LossySink {
            fn ingest(&mut self, epoch: &EncodedEpoch) -> Result<()> {
                self.0.ingest(epoch)
            }
            fn query(
                &mut self,
                qts: Timestamp,
                table: TableId,
                kr: Option<(RowKey, RowKey)>,
                output: &OutputKind,
            ) -> Result<QueryOutput> {
                // Misroute every query to table 0: wrong snapshots.
                let _ = table;
                self.0.query(qts, TableId::new(0), kr, output)
            }
            fn global_cmt_ts_us(&self) -> u64 {
                self.0.global_cmt_ts_us()
            }
        }
        let replayer = TraceReplayer::open(&path).unwrap();
        let mut sink = LossySink(EngineSink::new(n));
        let report = replayer.run(ReplayMode::Sequential, &mut sink).unwrap();
        assert!(!report.mismatches.is_empty(), "misrouted queries must diverge");
        assert!(!report.reproduced());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupt_trace_payloads_are_rejected() {
        let dir = scratch("corrupt");
        let path = dir.join("run.jsonl");
        let (epochs, n) = stream();
        record_reference(&path, &epochs, n);
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip one hex digit inside the first epoch payload.
        let at = text.find("\"bytes\":\"").unwrap() + "\"bytes\":\"".len();
        let mut bad = text.into_bytes();
        bad[at] = if bad[at] == b'0' { b'1' } else { b'0' };
        std::fs::write(&path, bad).unwrap();
        assert!(matches!(TraceReplayer::open(&path), Err(Error::CodecChecksum)));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn filtered_queries_are_refused_at_capture() {
        let dir = scratch("filters");
        let path = dir.join("run.jsonl");
        let mut rec = TraceRecorder::create(&path).unwrap();
        let spec = QuerySpec::count(TableId::new(0)).filter(aets_memtable::Filter {
            column: ColumnId::new(0),
            op: aets_memtable::CmpOp::Eq,
            value: aets_common::Value::Int(1),
        });
        let err = rec.record_query(0, Timestamp::ZERO, &spec, &QueryOutput::Count(0)).unwrap_err();
        assert!(matches!(err, Error::Config(_)));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn events_round_trip_through_the_line_codec() {
        let (epochs, _) = stream();
        let events = vec![
            TraceEvent::Epoch { at_us: 42, epoch: epochs[0].clone() },
            TraceEvent::Query {
                at_us: 50,
                qts_us: 1234,
                table: TableId::new(3),
                key_range: Some((7, 900)),
                output: "agg:2:Sum".into(),
                result: "agg=Some(5.0)".into(),
            },
            TraceEvent::Query {
                at_us: 60,
                qts_us: 99,
                table: TableId::new(0),
                key_range: None,
                output: "count".into(),
                result: "count=17".into(),
            },
            TraceEvent::End { global_cmt_ts_us: 5555, epochs: 1, queries: 2 },
        ];
        for e in events {
            let line = encode_event(&e);
            let got = decode_event(&line).unwrap();
            match (&e, &got) {
                (TraceEvent::Epoch { epoch: a, .. }, TraceEvent::Epoch { epoch: b, .. }) => {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.bytes, b.bytes);
                    assert_eq!(a.crc32, b.crc32);
                }
                _ => assert_eq!(e, got),
            }
        }
    }
}
