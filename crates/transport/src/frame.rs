//! The log-shipping wire format.
//!
//! Every message on the channel is one length-prefixed frame:
//!
//! ```text
//! magic   u32 LE   0x41455453 ("AETS")
//! kind    u8       frame kind tag
//! version u8       wire protocol version (1)
//! len     u32 LE   payload length in bytes
//! hcrc    u32 LE   CRC-32 over the 10 header bytes above
//! payload len bytes
//! pcrc    u32 LE   CRC-32 over the payload
//! ```
//!
//! The split checksum is the load-bearing part: `hcrc` proves the length
//! field before any allocation or payload read trusts it, and `pcrc`
//! proves the payload. Together they guarantee the codec's corruption
//! contract — *every* single-byte change anywhere in a frame is detected
//! and surfaces as [`Error::CodecChecksum`] (or a magic/version/tag
//! rejection), never as a silently mis-framed message. Epoch payloads
//! additionally carry the epoch's own frame CRC from
//! [`aets_wal::EncodedEpoch`], so corruption is caught even if it slips
//! past transport framing (it cannot, but defence in depth is free here).
//!
//! A decode failure poisons the whole TCP session: after arbitrary byte
//! damage the receiver can no longer prove where the next frame starts,
//! so both sides tear the connection down and re-synchronise through the
//! HELLO/RESUME handshake instead of guessing.
//!
//! Kinds at or above [`KIND_EXTENSION_MIN`] are *optional extensions*:
//! both checksums still apply (corruption is never tolerated), but a
//! decoder that doesn't recognise the kind yields
//! [`Frame::Extension`] — a verified, skippable placeholder — instead of
//! [`Error::CodecBadTag`]. That is the forward-compatibility contract a
//! new sender relies on to put advisory frames (like the [`Frame::Trace`]
//! span context) in front of old receivers without breaking them; core
//! protocol kinds below the threshold still reject unknown tags hard.

use aets_common::{EpochId, Error, Result, Timestamp};
use aets_wal::{crc32, EncodedEpoch};
use std::io::{Read, Write};

/// Frame magic ("AETS" in LE byte order).
pub const MAGIC: u32 = 0x4145_5453;
/// Wire protocol version.
pub const VERSION: u8 = 1;
/// Upper bound on a frame payload; a verified header announcing more
/// than this is rejected as a protocol violation (a single epoch batch
/// is a few MiB at most).
pub const MAX_PAYLOAD: usize = 1 << 28;

const HEADER_LEN: usize = 10;
const HEADER_FULL: usize = HEADER_LEN + 4;

const KIND_HELLO: u8 = 1;
const KIND_RESUME: u8 = 2;
const KIND_EPOCH: u8 = 3;
const KIND_ACK: u8 = 4;
const KIND_SHUTDOWN: u8 = 5;

/// First kind of the optional-extension range (`0x80..=0xFF`): verified
/// but skippable when unrecognised.
pub const KIND_EXTENSION_MIN: u8 = 0x80;
const KIND_TRACE: u8 = 0x81;

/// One message of the log-shipping protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Sender → receiver, first frame of every session: identifies the
    /// stream being shipped.
    Hello {
        /// Sequence number of the stream's first epoch.
        first_seq: u64,
        /// Total epochs the stream will deliver (drives
        /// [`aets_wal::EpochSource::num_epochs`] on the receiving side).
        stream_epochs: u64,
    },
    /// Receiver → sender, handshake reply: the resume point. The sender
    /// must (re)ship from `last_durable_epoch + 1` — or from the stream
    /// start when `None`. Everything at or below the resume point is
    /// implicitly acknowledged.
    Resume {
        /// Highest epoch sequence durably consumed by the receiver.
        last_durable_epoch: Option<u64>,
    },
    /// Sender → receiver: one encoded epoch.
    Epoch(EncodedEpoch),
    /// Receiver → sender: cumulative acknowledgement. Every epoch at or
    /// below `last_durable_epoch` has been handed to the replay path;
    /// the sender's in-flight window slides past them.
    Ack {
        /// Highest epoch sequence durably consumed.
        last_durable_epoch: u64,
    },
    /// Sender → receiver: the stream is complete (best effort — a lost
    /// shutdown is recovered by the next handshake).
    Shutdown,
    /// Sender → receiver, optional extension: trace context for the
    /// epoch frame that immediately follows it. Carries the sender's
    /// span id and ship-start stamp so the receiver's `net_recv` span
    /// joins the sender's `net_ship` span by id across processes. Purely
    /// advisory — receivers that predate it skip it as an unknown
    /// extension, and a lost one only costs a cross-node span link.
    Trace {
        /// Epoch sequence the next epoch frame will carry.
        epoch_seq: u64,
        /// The sender's `net_ship` span id.
        trace_id: u64,
        /// Ship start on the *sender's* telemetry clock (micros).
        ship_start_us: u64,
    },
    /// An extension frame ([`KIND_EXTENSION_MIN`]`..=0xFF`) this decoder
    /// doesn't recognise: checksums verified, payload discarded.
    Extension {
        /// The unrecognised kind tag.
        kind: u8,
    },
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => KIND_HELLO,
            Frame::Resume { .. } => KIND_RESUME,
            Frame::Epoch(_) => KIND_EPOCH,
            Frame::Ack { .. } => KIND_ACK,
            Frame::Shutdown => KIND_SHUTDOWN,
            Frame::Trace { .. } => KIND_TRACE,
            Frame::Extension { kind } => *kind,
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], at: usize) -> Result<u32> {
    let b = buf.get(at..at + 4).ok_or(Error::CodecTruncated)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn get_u64(buf: &[u8], at: usize) -> Result<u64> {
    let b = buf.get(at..at + 8).ok_or(Error::CodecTruncated)?;
    Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
}

fn encode_payload(frame: &Frame, out: &mut Vec<u8>) {
    match frame {
        Frame::Hello { first_seq, stream_epochs } => {
            put_u64(out, *first_seq);
            put_u64(out, *stream_epochs);
        }
        Frame::Resume { last_durable_epoch } => {
            out.push(u8::from(last_durable_epoch.is_some()));
            put_u64(out, last_durable_epoch.unwrap_or(0));
        }
        Frame::Epoch(e) => {
            put_u64(out, e.id.raw());
            put_u64(out, e.txn_count as u64);
            put_u64(out, e.max_commit_ts.as_micros());
            put_u32(out, e.crc32);
            out.extend_from_slice(&e.bytes);
        }
        Frame::Ack { last_durable_epoch } => put_u64(out, *last_durable_epoch),
        Frame::Shutdown => {}
        Frame::Trace { epoch_seq, trace_id, ship_start_us } => {
            put_u64(out, *epoch_seq);
            put_u64(out, *trace_id);
            put_u64(out, *ship_start_us);
        }
        // Encoding a placeholder yields an empty extension of that kind
        // (exercised by the forward-compat tests).
        Frame::Extension { .. } => {}
    }
}

fn decode_payload(kind: u8, buf: &[u8]) -> Result<Frame> {
    let exact = |want: usize| {
        if buf.len() == want {
            Ok(())
        } else {
            Err(Error::Codec(format!("frame kind {kind}: payload {} != {want}", buf.len())))
        }
    };
    match kind {
        KIND_HELLO => {
            exact(16)?;
            Ok(Frame::Hello { first_seq: get_u64(buf, 0)?, stream_epochs: get_u64(buf, 8)? })
        }
        KIND_RESUME => {
            exact(9)?;
            let last = match buf[0] {
                0 => None,
                1 => Some(get_u64(buf, 1)?),
                f => return Err(Error::Codec(format!("RESUME flag {f}"))),
            };
            Ok(Frame::Resume { last_durable_epoch: last })
        }
        KIND_EPOCH => {
            if buf.len() < 28 {
                return Err(Error::CodecTruncated);
            }
            Ok(Frame::Epoch(EncodedEpoch {
                id: EpochId::new(get_u64(buf, 0)?),
                txn_count: get_u64(buf, 8)? as usize,
                max_commit_ts: Timestamp::from_micros(get_u64(buf, 16)?),
                crc32: get_u32(buf, 24)?,
                bytes: bytes::Bytes::copy_from_slice(&buf[28..]),
            }))
        }
        KIND_ACK => {
            exact(8)?;
            Ok(Frame::Ack { last_durable_epoch: get_u64(buf, 0)? })
        }
        KIND_SHUTDOWN => {
            exact(0)?;
            Ok(Frame::Shutdown)
        }
        KIND_TRACE => {
            exact(24)?;
            Ok(Frame::Trace {
                epoch_seq: get_u64(buf, 0)?,
                trace_id: get_u64(buf, 8)?,
                ship_start_us: get_u64(buf, 16)?,
            })
        }
        k if k >= KIND_EXTENSION_MIN => Ok(Frame::Extension { kind: k }),
        _ => Err(Error::CodecBadTag),
    }
}

/// Encodes `frame` into `out` (appended; `out` is not cleared).
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let start = out.len();
    put_u32(out, MAGIC);
    out.push(frame.kind());
    out.push(VERSION);
    let len_at = out.len();
    put_u32(out, 0); // patched below
    let payload_at = out.len() + 4; // after hcrc
    put_u32(out, 0); // hcrc, patched below
    encode_payload(frame, out);
    let plen = (out.len() - payload_at) as u32;
    out[len_at..len_at + 4].copy_from_slice(&plen.to_le_bytes());
    let hcrc = crc32(&out[start..start + HEADER_LEN]);
    out[len_at + 4..len_at + 8].copy_from_slice(&hcrc.to_le_bytes());
    let pcrc = crc32(&out[payload_at..]);
    out.extend_from_slice(&pcrc.to_le_bytes());
}

/// Decodes one frame from the front of `buf`, returning it and the
/// number of bytes consumed. Any corruption of the consumed bytes fails
/// with a checksum / truncation / protocol error — never a different
/// valid frame.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize)> {
    let header = buf.get(..HEADER_FULL).ok_or(Error::CodecTruncated)?;
    if crc32(&header[..HEADER_LEN]) != get_u32(header, HEADER_LEN)? {
        return Err(Error::CodecChecksum);
    }
    if get_u32(header, 0)? != MAGIC {
        return Err(Error::Codec("bad frame magic".into()));
    }
    if header[5] != VERSION {
        return Err(Error::Codec(format!("unsupported wire version {}", header[5])));
    }
    let plen = get_u32(header, 6)? as usize;
    if plen > MAX_PAYLOAD {
        return Err(Error::Codec(format!("frame payload {plen} exceeds cap")));
    }
    let total = HEADER_FULL + plen + 4;
    let rest = buf.get(HEADER_FULL..total).ok_or(Error::CodecTruncated)?;
    let (payload, pcrc) = rest.split_at(plen);
    if crc32(payload) != u32::from_le_bytes([pcrc[0], pcrc[1], pcrc[2], pcrc[3]]) {
        return Err(Error::CodecChecksum);
    }
    Ok((decode_payload(header[4], payload)?, total))
}

/// What [`read_frame`] observed on the socket.
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete, verified frame.
    Frame(Frame, usize),
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// The socket read timeout elapsed *before the first byte of a
    /// frame*: the channel is idle, not torn. A timeout mid-frame is an
    /// error instead — the stream position would be unrecoverable.
    Idle,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

fn read_exact(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<()> {
    r.read_exact(buf).map_err(|e| Error::Io(format!("reading {what}: {e}")))
}

/// Reads one frame from a blocking stream with a read timeout installed.
///
/// Returns [`ReadEvent::Idle`] only when the timeout fires between
/// frames; once a frame has started, a stall or short read is a hard
/// error because the byte-stream position can no longer be trusted.
pub fn read_frame(r: &mut impl Read) -> Result<ReadEvent> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(ReadEvent::Eof),
            Ok(_) => break,
            Err(e) if is_timeout(&e) => return Ok(ReadEvent::Idle),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Error::Io(format!("reading frame header: {e}"))),
        }
    }
    let mut header = [0u8; HEADER_FULL];
    header[0] = first[0];
    read_exact(r, &mut header[1..], "frame header")?;
    if crc32(&header[..HEADER_LEN]) != get_u32(&header, HEADER_LEN)? {
        return Err(Error::CodecChecksum);
    }
    if get_u32(&header, 0)? != MAGIC {
        return Err(Error::Codec("bad frame magic".into()));
    }
    if header[5] != VERSION {
        return Err(Error::Codec(format!("unsupported wire version {}", header[5])));
    }
    let plen = get_u32(&header, 6)? as usize;
    if plen > MAX_PAYLOAD {
        return Err(Error::Codec(format!("frame payload {plen} exceeds cap")));
    }
    let mut rest = vec![0u8; plen + 4];
    read_exact(r, &mut rest, "frame payload")?;
    let (payload, pcrc) = rest.split_at(plen);
    if crc32(payload) != u32::from_le_bytes([pcrc[0], pcrc[1], pcrc[2], pcrc[3]]) {
        return Err(Error::CodecChecksum);
    }
    let frame = decode_payload(header[4], payload)?;
    Ok(ReadEvent::Frame(frame, HEADER_FULL + plen + 4))
}

/// Encodes and writes `frame`, returning the bytes put on the wire.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<usize> {
    let mut buf = Vec::with_capacity(64);
    encode_frame(frame, &mut buf);
    w.write_all(&buf).map_err(|e| Error::Io(format!("writing frame: {e}")))?;
    w.flush().map_err(|e| Error::Io(format!("flushing frame: {e}")))?;
    Ok(buf.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_epoch(seq: u64, payload: &[u8]) -> EncodedEpoch {
        let bytes = bytes::Bytes::copy_from_slice(payload);
        EncodedEpoch {
            id: EpochId::new(seq),
            crc32: crc32(&bytes),
            bytes,
            txn_count: 3,
            max_commit_ts: Timestamp::from_micros(seq.wrapping_mul(100).wrapping_add(7)),
        }
    }

    fn frames() -> Vec<Frame> {
        vec![
            Frame::Hello { first_seq: 0, stream_epochs: 42 },
            Frame::Hello { first_seq: u64::MAX, stream_epochs: 0 },
            Frame::Resume { last_durable_epoch: None },
            Frame::Resume { last_durable_epoch: Some(7) },
            Frame::Epoch(sample_epoch(3, b"some epoch payload bytes")),
            Frame::Epoch(sample_epoch(0, b"")),
            Frame::Ack { last_durable_epoch: 11 },
            Frame::Shutdown,
            Frame::Trace { epoch_seq: 9, trace_id: 77, ship_start_us: 123_456 },
            Frame::Extension { kind: 0xEE },
        ]
    }

    #[test]
    fn frames_round_trip() {
        for f in frames() {
            let mut buf = Vec::new();
            encode_frame(&f, &mut buf);
            let (got, used) = decode_frame(&buf).expect("clean frame decodes");
            assert_eq!(used, buf.len());
            assert_eq!(got, f);
        }
    }

    #[test]
    fn back_to_back_frames_decode_at_boundaries() {
        let mut buf = Vec::new();
        for f in frames() {
            encode_frame(&f, &mut buf);
        }
        let mut at = 0;
        let mut seen = Vec::new();
        while at < buf.len() {
            let (f, used) = decode_frame(&buf[at..]).expect("boundary decode");
            at += used;
            seen.push(f);
        }
        assert_eq!(seen, frames());
    }

    /// The corruption contract, exhaustively: flipping any single byte of
    /// an encoded frame (every position, two different flip patterns) is
    /// always detected — the decode either errors or, never, yields a
    /// different frame.
    #[test]
    fn every_single_byte_flip_is_detected() {
        for f in frames() {
            let mut clean = Vec::new();
            encode_frame(&f, &mut clean);
            for pos in 0..clean.len() {
                for mask in [0x01u8, 0xFF, 0x80] {
                    let mut bad = clean.clone();
                    bad[pos] ^= mask;
                    match decode_frame(&bad) {
                        Err(_) => {}
                        Ok((got, _)) => panic!(
                            "flip {mask:#x} at byte {pos} of {f:?} decoded as {got:?} \
                             instead of failing"
                        ),
                    }
                }
            }
        }
    }

    /// Truncating a frame anywhere must fail, never mis-frame.
    #[test]
    fn every_truncation_is_detected() {
        for f in frames() {
            let mut clean = Vec::new();
            encode_frame(&f, &mut clean);
            for cut in 0..clean.len() {
                assert!(decode_frame(&clean[..cut]).is_err(), "cut at {cut} of {f:?} decoded");
            }
        }
    }

    /// Builds a raw frame of arbitrary kind and payload — what a future
    /// protocol revision this decoder has never heard of would emit.
    fn raw_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(kind);
        buf.push(VERSION);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let hcrc = crc32(&buf[..HEADER_LEN]);
        buf.extend_from_slice(&hcrc.to_le_bytes());
        buf.extend_from_slice(payload);
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf
    }

    /// The forward-compatibility contract: a verified frame with an
    /// unknown kind in the extension range decodes as a skippable
    /// placeholder (payload dropped, full frame consumed) — while an
    /// unknown kind below the range stays a hard protocol error.
    #[test]
    fn unknown_extension_kinds_are_skipped_not_fatal() {
        let buf = raw_frame(0xC7, b"future extension payload this decoder cannot parse");
        let (frame, used) = decode_frame(&buf).expect("extension decodes");
        assert_eq!(frame, Frame::Extension { kind: 0xC7 });
        assert_eq!(used, buf.len(), "whole frame consumed so the stream stays framed");

        let core_unknown = raw_frame(0x2A, b"");
        assert!(
            matches!(decode_frame(&core_unknown), Err(Error::CodecBadTag)),
            "unknown core kinds still tear the session down"
        );

        // Corruption inside an extension is still corruption: the skip
        // path never weakens the checksum contract.
        let mut bad = raw_frame(0xC7, b"future extension payload");
        let last = bad.len() - 6;
        bad[last] ^= 0xFF;
        assert!(decode_frame(&bad).is_err());
    }

    #[test]
    fn trace_frames_carry_cross_node_span_context() {
        let f = Frame::Trace { epoch_seq: u64::MAX, trace_id: 1, ship_start_us: 0 };
        let mut buf = Vec::new();
        encode_frame(&f, &mut buf);
        let (got, _) = decode_frame(&buf).expect("trace decodes");
        assert_eq!(got, f);
        // A decoder that predates KIND_TRACE would take the extension
        // path; prove the payload length matches what it would skip.
        let (_, used) = decode_frame(&buf).expect("consume");
        assert_eq!(used, buf.len());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        encode_frame(&Frame::Shutdown, &mut buf);
        // Forge the length field and restamp the header CRC so only the
        // cap check can reject it.
        buf[6..10].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        let hcrc = crc32(&buf[..HEADER_LEN]);
        buf[10..14].copy_from_slice(&hcrc.to_le_bytes());
        assert!(matches!(decode_frame(&buf), Err(Error::Codec(_))));
    }

    #[test]
    fn stream_read_round_trips() {
        let mut buf = Vec::new();
        for f in frames() {
            encode_frame(&f, &mut buf);
        }
        let mut cursor = std::io::Cursor::new(buf);
        for want in frames() {
            match read_frame(&mut cursor).expect("stream decode") {
                ReadEvent::Frame(got, _) => assert_eq!(got, want),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(matches!(read_frame(&mut cursor).expect("eof"), ReadEvent::Eof));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary epoch payloads round-trip through the epoch frame.
        #[test]
        fn epoch_frames_round_trip(seq in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..512)) {
            let f = Frame::Epoch(sample_epoch(seq, &payload));
            let mut buf = Vec::new();
            encode_frame(&f, &mut buf);
            let (got, used) = decode_frame(&buf).expect("decode");
            prop_assert_eq!(used, buf.len());
            prop_assert_eq!(got, f);
        }

        /// Random single-byte damage at a random position is detected on
        /// arbitrary epoch frames too (the exhaustive unit test covers
        /// fixed frames; this covers the payload space).
        #[test]
        fn random_byte_damage_is_detected(
            seq in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
            pos_sel in any::<u64>(),
            mask in 1u8..=255,
        ) {
            let f = Frame::Epoch(sample_epoch(seq, &payload));
            let mut buf = Vec::new();
            encode_frame(&f, &mut buf);
            let pos = (pos_sel % buf.len() as u64) as usize;
            buf[pos] ^= mask;
            prop_assert!(decode_frame(&buf).is_err());
        }
    }
}
