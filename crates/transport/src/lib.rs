//! Networked log shipping for the AETS backup pipeline.
//!
//! Everything upstream of this crate pretends the replicated epoch
//! stream simply *appears* at the backup ([`aets_wal::EpochSource`]).
//! This crate makes that true over a real network:
//!
//! * [`frame`] — the length-prefixed, double-CRC wire format. Every
//!   single-byte corruption or truncation of a frame is detected; a
//!   damaged session is torn down rather than guessed at.
//! * [`sender`] — [`ship_epochs`]: blocking TCP shipping with a bounded
//!   in-flight window (backpressure, never drops), reconnect with
//!   exponential backoff, and resume-from-handshake.
//! * [`receiver`] — [`ShipReceiver`] accepts sessions, dedups
//!   redeliveries by epoch sequence (exactly-once downstream), and
//!   exposes the stream as a [`NetEpochSource`] the existing ingest
//!   stack (`ingest_epoch`, `DurableBackup`, the fleet) consumes
//!   unchanged.
//! * [`fault`] — a seeded loopback proxy ([`FaultProxy`]) injecting
//!   disconnects, partitions, corruption, truncation, delay,
//!   duplication, and half-open stalls, for deterministic chaos tests.
//! * [`trace`] — JSONL capture of the node's boundary events
//!   ([`TraceRecorder`]) and deterministic replay
//!   ([`TraceReplayer`]) in sequential / paced / as-fast-as-possible
//!   modes, asserting byte-identical query results.
//!
//! No async runtime: blocking `std::net` sockets, read/write timeouts,
//! and a handful of threads, consistent with the workspace's
//! zero-external-dependency build.

// The transport sits on the durability path: failures must surface as
// typed errors (and heal through reconnect/resync), never panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod fault;
pub mod frame;
pub mod receiver;
pub mod sender;
pub mod trace;

pub use fault::{FaultProxy, NetFaultKind, NetFaultPlan};
pub use frame::{decode_frame, encode_frame, read_frame, write_frame, Frame, ReadEvent};
pub use receiver::{NetEpochSource, ReceiverConfig, ShipReceiver};
pub use sender::{ship_epochs, ShipReport, ShipperConfig};
pub use trace::{
    render_output_kind, render_result, EngineSink, ReplayMode, TraceEvent, TraceRecorder,
    TraceReplayer, TraceReport, TraceSink,
};
