//! Seeded network-fault injection for the log-shipping channel.
//!
//! [`FaultProxy`] is a loopback TCP proxy that sits between the shipper
//! and the receiver and damages the byte stream according to a
//! [`NetFaultPlan`]: hard disconnects, full partitions (refusing new
//! connections for a while), single-byte corruption, truncated frames,
//! added delay, duplicated chunks, and half-open stalls (the peer
//! vanishes without a FIN). The *schedule* is a pure function of the plan
//! seed and a global forwarded-segment counter, drawn with the same
//! `splitmix64` generator as the WAL- and fleet-level fault plans — so a
//! chaos run decides *what* to inject deterministically, even though TCP
//! chunk boundaries (and therefore exactly which bytes a fault lands on)
//! depend on kernel timing.
//!
//! Everything the proxy injects is survivable by construction: corruption
//! and truncation are caught by the frame CRCs, disconnects and stalls by
//! the read timeouts, and the sender heals all of them through the
//! HELLO/RESUME handshake plus receiver-side epoch dedup. The chaos test
//! (`tests/net_chaos.rs`) proves the replayed state equals the serial
//! oracle under every plan.

use aets_common::splitmix64;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One class of network fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Both directions of the session are torn down immediately (RST-ish
    /// close). The shipper reconnects and resyncs.
    Disconnect,
    /// The proxy refuses new connections for
    /// [`NetFaultPlan::partition_ms`]: a network partition between the
    /// nodes. Existing sessions are torn down too.
    Partition,
    /// One byte of the forwarded chunk is flipped. The receiver's frame
    /// CRC rejects it and the session is torn down (a corrupted TCP
    /// stream cannot be re-framed).
    CorruptByte,
    /// Only a prefix of the chunk is forwarded, then the session closes:
    /// a frame torn mid-flight.
    Truncate,
    /// The chunk is forwarded after a delay drawn from
    /// `1..=max_delay_us`.
    Delay,
    /// The chunk is forwarded twice. Raw TCP never does this; it models a
    /// buggy middlebox and exercises the receiver's re-framing (the
    /// duplicate bytes mis-frame and tear the session, after which epoch
    /// dedup absorbs any re-shipped epochs).
    Duplicate,
    /// The session goes silent for [`NetFaultPlan::stall_ms`] and then
    /// dies without a clean close — a half-open connection. Survived by
    /// read timeouts on both sides.
    HalfOpenStall,
}

/// A deterministic schedule of network faults.
#[derive(Debug, Clone)]
pub struct NetFaultPlan {
    /// Seed of the schedule.
    pub seed: u64,
    /// Probability that a forwarded segment draws a fault.
    pub rate: f64,
    /// Kinds to draw from (uniformly). Empty disables all faults (the
    /// proxy becomes a transparent relay).
    pub kinds: Vec<NetFaultKind>,
    /// Maximum forwarded chunk per schedule draw: the proxy re-rolls the
    /// fault dice once per forwarded chunk of up to this many bytes.
    /// Calibrate against the frame sizes in flight — a granularity much
    /// smaller than one epoch frame makes per-frame fault probability
    /// approach certainty and no session can ever deliver anything.
    pub segment_bytes: usize,
    /// Upper bound on an injected [`NetFaultKind::Delay`] (microseconds).
    pub max_delay_us: u64,
    /// How long a [`NetFaultKind::Partition`] refuses connections.
    pub partition_ms: u64,
    /// How long a [`NetFaultKind::HalfOpenStall`] stays silent before the
    /// session dies.
    pub stall_ms: u64,
}

impl NetFaultPlan {
    /// A plan over every fault kind with timing defaults tuned to stay
    /// well under the transport's session timeouts (so injected delay is
    /// absorbed, while stalls and partitions still force reconnects).
    pub fn new(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            rate,
            kinds: vec![
                NetFaultKind::Disconnect,
                NetFaultKind::Partition,
                NetFaultKind::CorruptByte,
                NetFaultKind::Truncate,
                NetFaultKind::Delay,
                NetFaultKind::Duplicate,
                NetFaultKind::HalfOpenStall,
            ],
            segment_bytes: 8192,
            max_delay_us: 2_000,
            partition_ms: 30,
            stall_ms: 40,
        }
    }

    /// Restricts the plan to `kinds`.
    pub fn kinds(mut self, kinds: Vec<NetFaultKind>) -> Self {
        self.kinds = kinds;
        self
    }

    /// The fault (if any) drawn for global segment number `segment` in
    /// `direction` (0 = shipper→receiver, 1 = receiver→shipper).
    pub fn fault_at(&self, direction: u8, segment: u64) -> Option<NetFaultKind> {
        if self.kinds.is_empty() || self.rate <= 0.0 {
            return None;
        }
        let h = splitmix64(
            self.seed
                ^ splitmix64(
                    segment.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(direction) << 56),
                ),
        );
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= self.rate {
            return None;
        }
        Some(self.kinds[(splitmix64(h) % self.kinds.len() as u64) as usize])
    }

    /// Delay drawn for a [`NetFaultKind::Delay`] at `segment`.
    pub fn delay_us(&self, segment: u64) -> u64 {
        1 + splitmix64(self.seed ^ segment ^ 0xDE1A) % self.max_delay_us.max(1)
    }

    /// Corruption coordinates for a [`NetFaultKind::CorruptByte`] /
    /// [`NetFaultKind::Truncate`] at `segment`: a draw the proxy reduces
    /// modulo the live chunk length.
    pub fn damage_draw(&self, segment: u64) -> u64 {
        splitmix64(self.seed ^ segment ^ 0xBAD0_B17E)
    }
}

/// What a pump thread should do with one forwarded chunk.
enum Action {
    Forward,
    Disconnect,
    Partition,
    Corrupt(u64),
    Truncate(u64),
    Delay(u64),
    Duplicate,
    Stall,
}

struct Shared {
    plan: NetFaultPlan,
    shutdown: AtomicBool,
    /// Global segment counter across both directions and all sessions:
    /// each pump increment advances the schedule.
    segments: AtomicU64,
    /// Proxy-clock milliseconds until which new connections are refused.
    partition_until_ms: AtomicU64,
    connections: AtomicU64,
    start: std::time::Instant,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn partitioned(&self) -> bool {
        self.now_ms() < self.partition_until_ms.load(Ordering::Relaxed)
    }

    fn begin_partition(&self) {
        let until = self.now_ms() + self.plan.partition_ms;
        self.partition_until_ms.fetch_max(until, Ordering::Relaxed);
    }
}

/// A faulty loopback TCP proxy in front of `upstream`.
///
/// Connect the shipper to [`FaultProxy::addr`]; each accepted connection
/// is bridged to `upstream` by two pump threads (one per direction), each
/// applying the plan's schedule to the chunks it forwards.
pub struct FaultProxy {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for FaultProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultProxy")
            .field("addr", &self.addr)
            .field("connections", &self.connections())
            .finish()
    }
}

impl FaultProxy {
    /// Starts the proxy on an ephemeral loopback port.
    pub fn start(upstream: SocketAddr, plan: NetFaultPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            plan,
            shutdown: AtomicBool::new(false),
            segments: AtomicU64::new(0),
            partition_until_ms: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            start: std::time::Instant::now(),
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::spawn(move || {
            let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while !accept_shared.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        if accept_shared.partitioned() {
                            drop(client); // refused: the network is split
                            continue;
                        }
                        accept_shared.connections.fetch_add(1, Ordering::Relaxed);
                        match TcpStream::connect(upstream) {
                            Ok(server) => {
                                if let Ok(mut spawned) =
                                    spawn_session(client, server, accept_shared.clone())
                                {
                                    pumps.append(&mut spawned);
                                }
                            }
                            Err(_) => drop(client),
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            for p in pumps {
                let _ = p.join();
            }
        });
        Ok(FaultProxy { addr, shared, accept_thread: Some(accept_thread) })
    }

    /// The address the shipper should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far (refused-while-partitioned ones are
    /// not counted).
    pub fn connections(&self) -> u64 {
        self.shared.connections.load(Ordering::Relaxed)
    }

    /// Stops accepting and tears down every live session.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn decide(shared: &Shared, direction: u8) -> Action {
    let segment = shared.segments.fetch_add(1, Ordering::Relaxed);
    let plan = &shared.plan;
    match plan.fault_at(direction, segment) {
        None => Action::Forward,
        Some(NetFaultKind::Disconnect) => Action::Disconnect,
        Some(NetFaultKind::Partition) => Action::Partition,
        Some(NetFaultKind::CorruptByte) => Action::Corrupt(plan.damage_draw(segment)),
        Some(NetFaultKind::Truncate) => Action::Truncate(plan.damage_draw(segment)),
        Some(NetFaultKind::Delay) => Action::Delay(plan.delay_us(segment)),
        Some(NetFaultKind::Duplicate) => Action::Duplicate,
        Some(NetFaultKind::HalfOpenStall) => Action::Stall,
    }
}

/// Spawns the two pump threads of one bridged session. Each pump owns one
/// direction; a session-wide alive flag lets either side tear both down.
fn spawn_session(
    client: TcpStream,
    server: TcpStream,
    shared: Arc<Shared>,
) -> std::io::Result<Vec<std::thread::JoinHandle<()>>> {
    let alive = Arc::new(AtomicBool::new(true));
    let c2 = client.try_clone()?;
    let s2 = server.try_clone()?;
    let mut handles = Vec::with_capacity(2);
    for (direction, src, dst) in [(0u8, client, s2), (1u8, server, c2)] {
        let shared = shared.clone();
        let alive = alive.clone();
        handles.push(std::thread::spawn(move || {
            pump(direction, src, dst, &shared, &alive);
            alive.store(false, Ordering::Relaxed);
        }));
    }
    Ok(handles)
}

fn pump(
    direction: u8,
    mut src: TcpStream,
    mut dst: TcpStream,
    shared: &Shared,
    alive: &AtomicBool,
) {
    // Short read timeout so the pump notices shutdown/peer-teardown fast.
    let _ = src.set_read_timeout(Some(Duration::from_millis(20)));
    let mut buf = vec![0u8; shared.plan.segment_bytes.max(1)];
    while alive.load(Ordering::Relaxed) && !shared.shutdown.load(Ordering::Relaxed) {
        let n = match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let chunk = &buf[..n];
        match decide(shared, direction) {
            Action::Forward => {
                if dst.write_all(chunk).is_err() {
                    break;
                }
            }
            Action::Disconnect => break,
            Action::Partition => {
                shared.begin_partition();
                break;
            }
            Action::Corrupt(draw) => {
                let mut damaged = chunk.to_vec();
                let pos = (draw % n as u64) as usize;
                damaged[pos] ^= 1 << (splitmix64(draw) % 8);
                if dst.write_all(&damaged).is_err() {
                    break;
                }
            }
            Action::Truncate(draw) => {
                let keep = (draw % n as u64) as usize;
                let _ = dst.write_all(&chunk[..keep]);
                break;
            }
            Action::Delay(us) => {
                std::thread::sleep(Duration::from_micros(us));
                if dst.write_all(chunk).is_err() {
                    break;
                }
            }
            Action::Duplicate => {
                if dst.write_all(chunk).is_err() || dst.write_all(chunk).is_err() {
                    break;
                }
            }
            Action::Stall => {
                std::thread::sleep(Duration::from_millis(shared.plan.stall_ms));
                break;
            }
        }
    }
    let _ = src.shutdown(std::net::Shutdown::Both);
    let _ = dst.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = NetFaultPlan::new(42, 0.3);
        let b = NetFaultPlan::new(42, 0.3);
        let c = NetFaultPlan::new(43, 0.3);
        let sched = |p: &NetFaultPlan| {
            (0..2u8)
                .flat_map(|d| (0..500u64).map(move |s| (d, s)))
                .map(|(d, s)| p.fault_at(d, s))
                .collect::<Vec<_>>()
        };
        assert_eq!(sched(&a), sched(&b));
        assert_ne!(sched(&a), sched(&c));
    }

    #[test]
    fn rate_bounds_fault_frequency() {
        let p = NetFaultPlan::new(7, 0.2);
        let hits = (0..10_000u64).filter(|&s| p.fault_at(0, s).is_some()).count();
        assert!((1_500..2_500).contains(&hits), "~20% expected, got {hits}");
        assert!(NetFaultPlan::new(7, 0.0).fault_at(0, 3).is_none());
        assert!(NetFaultPlan::new(7, 1.0).kinds(vec![]).fault_at(0, 3).is_none());
    }

    #[test]
    fn transparent_proxy_relays_bytes_both_ways() {
        let upstream = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 64];
            let n = s.read(&mut buf).unwrap();
            s.write_all(&buf[..n]).unwrap();
        });
        let proxy = FaultProxy::start(upstream_addr, NetFaultPlan::new(1, 0.0)).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"ping over the relay").unwrap();
        let mut back = [0u8; 64];
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let n = c.read(&mut back).unwrap();
        assert_eq!(&back[..n], b"ping over the relay");
        echo.join().unwrap();
        assert_eq!(proxy.connections(), 1);
    }

    #[test]
    fn partition_refuses_new_connections_until_it_heals() {
        let upstream = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        // Upstream accepts in a loop and holds sockets open briefly.
        let up = std::thread::spawn(move || {
            upstream.set_nonblocking(true).unwrap();
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            let mut held = Vec::new();
            while std::time::Instant::now() < deadline {
                match upstream.accept() {
                    Ok((s, _)) => held.push(s),
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
        });
        let mut plan = NetFaultPlan::new(5, 0.0);
        plan.partition_ms = 150;
        let proxy = FaultProxy::start(upstream_addr, plan).unwrap();
        proxy.shared.begin_partition();
        // While partitioned, connections are accepted by the OS listener
        // but immediately dropped by the proxy: the first read sees EOF.
        let mut refused = TcpStream::connect(proxy.addr()).unwrap();
        refused.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut b = [0u8; 1];
        assert_eq!(refused.read(&mut b).unwrap_or(0), 0, "partitioned conn must close");
        // After the partition heals, sessions are bridged again.
        std::thread::sleep(Duration::from_millis(200));
        let healed = TcpStream::connect(proxy.addr());
        assert!(healed.is_ok());
        std::thread::sleep(Duration::from_millis(30));
        assert!(proxy.connections() >= 1);
        drop(proxy);
        up.join().unwrap();
    }
}
