//! The receiving side of the log-shipping channel.
//!
//! [`ShipReceiver`] listens on a TCP address, accepts shipper sessions
//! one at a time (the channel has one shipper), performs the
//! HELLO/RESUME handshake, and enqueues verified epochs in strict
//! sequence order into a bounded buffer. [`NetEpochSource`] drains that
//! buffer as an [`EpochSource`], so the entire existing ingest stack —
//! `ingest_epoch`'s retry loop, `DurableBackup`, the backup fleet —
//! consumes a networked stream exactly as it consumes an in-memory one.
//!
//! Exactly-once delivery is the receiver's job: the shipper may deliver
//! any epoch more than once (every resync re-ships the in-flight
//! window), so the receiver dedups by epoch sequence — an epoch below
//! `next_expected` is already buffered or consumed and is dropped (and
//! counted in `net_epochs_deduped_total`). An epoch *above*
//! `next_expected` means bytes were lost inside a session, which the
//! framed protocol makes impossible without a CRC failure first — it is
//! treated as a protocol violation and tears the session down. Acks are
//! cumulative and advance only when the consumer actually fetches an
//! epoch, so the shipper's window tracks *durable* progress, not
//! buffered progress.

use crate::frame::{read_frame, write_frame, Frame, ReadEvent};
use aets_common::{Error, Result};
use aets_telemetry::trace::stages;
use aets_telemetry::{names, Span, SpanId, Telemetry};
use aets_wal::{EncodedEpoch, EpochSource};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tunables of the receiving endpoint.
#[derive(Debug, Clone)]
pub struct ReceiverConfig {
    /// Socket read timeout: the granularity at which a blocked read
    /// notices teardown, and the unit of idle detection.
    pub io_timeout: Duration,
    /// A session that stays silent this long is presumed half-open and
    /// torn down (the shipper will reconnect).
    pub conn_idle_timeout: Duration,
    /// How long a [`NetEpochSource::fetch`] waits for its epoch before
    /// reporting a stall (`None`) to the ingest retry loop.
    pub fetch_timeout: Duration,
    /// Bounded buffer of verified-but-unconsumed epochs; a full buffer
    /// stops reading from the socket (backpressure to the shipper via
    /// TCP flow control and the unmoving ack floor).
    pub max_buffered: usize,
    /// Durable floor to resume from: `Some(d)` tells the first handshake
    /// that epochs `..= d` are already consumed (e.g. a `DurableBackup`
    /// restarting with `next_seq() == d + 1`). `None` starts fresh.
    pub initial_floor: Option<u64>,
}

impl Default for ReceiverConfig {
    fn default() -> Self {
        Self {
            io_timeout: Duration::from_millis(25),
            conn_idle_timeout: Duration::from_millis(500),
            fetch_timeout: Duration::from_millis(300),
            max_buffered: 64,
            initial_floor: None,
        }
    }
}

#[derive(Debug)]
struct RecvState {
    /// Verified epochs awaiting consumption, in sequence order.
    queue: VecDeque<EncodedEpoch>,
    /// Next sequence the socket side will accept into the queue.
    next_expected: Option<u64>,
    /// Highest sequence handed to the consumer (the cumulative ack).
    last_durable: Option<u64>,
    /// Stream identity from the first HELLO.
    hello: Option<(u64, u64)>,
}

struct RecvShared {
    cfg: ReceiverConfig,
    tel: Arc<Telemetry>,
    state: Mutex<RecvState>,
    /// Signals queue growth (to fetchers) and queue drain (to the
    /// backpressured socket reader) and HELLO arrival.
    queue_cv: Condvar,
    /// Signals durable-floor advancement to the ack writer.
    ack_cv: Condvar,
    closed: AtomicBool,
}

/// The listening endpoint. Bind it, hand [`ShipReceiver::source`] to the
/// ingest side, and point the shipper at [`ShipReceiver::addr`].
pub struct ShipReceiver {
    addr: SocketAddr,
    shared: Arc<RecvShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ShipReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShipReceiver").field("addr", &self.addr).finish()
    }
}

impl ShipReceiver {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop.
    pub fn bind(addr: &str, cfg: ReceiverConfig, tel: Arc<Telemetry>) -> Result<ShipReceiver> {
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::Io(format!("bind {addr}: {e}")))?;
        let local = listener.local_addr().map_err(|e| Error::Io(e.to_string()))?;
        listener.set_nonblocking(true).map_err(|e| Error::Io(e.to_string()))?;
        let initial_floor = cfg.initial_floor;
        let shared = Arc::new(RecvShared {
            cfg,
            tel,
            state: Mutex::new(RecvState {
                queue: VecDeque::new(),
                next_expected: initial_floor.map(|d| d + 1),
                last_durable: initial_floor,
                hello: None,
            }),
            queue_cv: Condvar::new(),
            ack_cv: Condvar::new(),
            closed: AtomicBool::new(false),
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(ShipReceiver { addr: local, shared, accept_thread: Some(accept_thread) })
    }

    /// The bound address the shipper should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// An [`EpochSource`] view over the received stream. `num_epochs` /
    /// `first_seq` block until the first handshake announces the stream.
    pub fn source(&self) -> NetEpochSource {
        NetEpochSource { shared: self.shared.clone() }
    }

    /// Stops accepting and tears down the live session.
    pub fn shutdown(&mut self) {
        self.shared.closed.store(true, Ordering::Relaxed);
        self.shared.queue_cv.notify_all();
        self.shared.ack_cv.notify_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ShipReceiver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<RecvShared>) {
    while !shared.closed.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((conn, _)) => {
                // Sessions are served sequentially: the channel has one
                // shipper, and a dead session's replacement must observe
                // the post-teardown durable floor.
                handle_session(conn, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

/// Runs one shipper session to completion or teardown.
fn handle_session(mut conn: TcpStream, shared: &Arc<RecvShared>) {
    let cfg = &shared.cfg;
    let tel = &shared.tel;
    if conn.set_read_timeout(Some(cfg.io_timeout)).is_err() || conn.set_nodelay(true).is_err() {
        return;
    }
    // --- Handshake: HELLO in, RESUME out. ---
    let hello_deadline = Instant::now() + cfg.conn_idle_timeout;
    let (first_seq, stream_epochs) = loop {
        match read_frame(&mut conn) {
            Ok(ReadEvent::Frame(Frame::Hello { first_seq, stream_epochs }, n)) => {
                tel.registry().counter(names::NET_BYTES_RECV).add(n as u64);
                break (first_seq, stream_epochs);
            }
            Ok(ReadEvent::Idle) if Instant::now() < hello_deadline => continue,
            Ok(ReadEvent::Frame(..)) | Err(_) => {
                tel.registry().counter(names::NET_FRAME_ERRORS).inc();
                return;
            }
            Ok(ReadEvent::Eof) | Ok(ReadEvent::Idle) => return,
        }
    };
    let resume = {
        let mut st = match shared.state.lock() {
            Ok(g) => g,
            Err(_) => return,
        };
        if st.hello.is_none() {
            st.hello = Some((first_seq, stream_epochs));
            if st.next_expected.is_none() {
                st.next_expected = Some(first_seq);
            }
            shared.queue_cv.notify_all();
        }
        Frame::Resume { last_durable_epoch: st.last_durable }
    };
    if write_frame(&mut conn, &resume).is_err() {
        return;
    }
    tel.registry().counter(names::NET_HANDSHAKES).inc();

    // --- Ack writer: pushes cumulative acks as the floor advances. ---
    let alive = Arc::new(AtomicBool::new(true));
    let ack_conn = match conn.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    };
    let ack_shared = shared.clone();
    let ack_alive = alive.clone();
    let ack_thread = std::thread::spawn(move || ack_writer(ack_conn, &ack_shared, &ack_alive));

    // --- Read loop: verified, in-order, deduped, backpressured. ---
    let clock = tel.clock();
    // Trace context announced for the *next* epoch frame:
    // (epoch_seq, sender span id, arrival stamp on our clock).
    let mut pending_trace: Option<(u64, u64, u64)> = None;
    let mut last_activity = Instant::now();
    while alive.load(Ordering::Relaxed) && !shared.closed.load(Ordering::Relaxed) {
        match read_frame(&mut conn) {
            Ok(ReadEvent::Idle) => {
                if last_activity.elapsed() > cfg.conn_idle_timeout {
                    break; // half-open session: reclaim the endpoint
                }
            }
            Ok(ReadEvent::Eof) => break,
            Ok(ReadEvent::Frame(frame, n)) => {
                last_activity = Instant::now();
                tel.registry().counter(names::NET_BYTES_RECV).add(n as u64);
                match frame {
                    Frame::Epoch(e) => {
                        let seq = e.id.raw();
                        let trace = pending_trace.take().filter(|(s, _, _)| *s == seq);
                        match admit_epoch(e, shared) {
                            Admit::Reject => {
                                tel.registry().counter(names::NET_FRAME_ERRORS).inc();
                                break;
                            }
                            // Deduped redelivery: already traced by the
                            // delivery that admitted it.
                            Admit::Duplicate => {}
                            // Record the receive under the *sender's*
                            // span id so the two endpoints' rings join on
                            // it; the span covers trace arrival →
                            // admission on this node's clock (cross-node
                            // stamps don't mix).
                            Admit::Admitted => {
                                if let Some((_, trace_id, arrived_us)) = trace {
                                    tel.spans().record(Span {
                                        id: SpanId(trace_id),
                                        epoch: seq,
                                        stage: stages::NET_RECV,
                                        group: None,
                                        start_us: arrived_us,
                                        end_us: (clock)(),
                                        parent: None,
                                    });
                                }
                            }
                        }
                    }
                    Frame::Trace { epoch_seq, trace_id, ship_start_us: _ } => {
                        pending_trace = Some((epoch_seq, trace_id, (clock)()));
                    }
                    // Extensions from a newer sender: verified, skipped.
                    Frame::Extension { .. } => {}
                    Frame::Shutdown => break,
                    // HELLO mid-session or receiver-bound frames echoed
                    // back: protocol violation.
                    _ => {
                        tel.registry().counter(names::NET_FRAME_ERRORS).inc();
                        break;
                    }
                }
            }
            Err(_) => {
                // Corrupt bytes: the stream can no longer be re-framed.
                tel.registry().counter(names::NET_FRAME_ERRORS).inc();
                break;
            }
        }
    }
    alive.store(false, Ordering::Relaxed);
    shared.ack_cv.notify_all();
    let _ = conn.shutdown(std::net::Shutdown::Both);
    let _ = ack_thread.join();
}

/// Verifies, dedups, and enqueues one delivered epoch. Returns `false`
/// on a protocol violation that must tear the session down.
/// What [`admit_epoch`] did with a decoded epoch frame.
enum Admit {
    /// Freshly buffered for the consumer: this delivery is the one that
    /// lands in the epoch's timeline.
    Admitted,
    /// Redelivery of something already buffered or consumed — dropped by
    /// the dedup that makes at-least-once shipping exactly-once.
    Duplicate,
    /// Corrupt, out-of-order, or pre-HELLO: the session must die.
    Reject,
}

fn admit_epoch(e: EncodedEpoch, shared: &Arc<RecvShared>) -> Admit {
    if e.verify().is_err() {
        return Admit::Reject;
    }
    let Ok(mut st) = shared.state.lock() else { return Admit::Reject };
    loop {
        let next = match st.next_expected {
            Some(n) => n,
            None => return Admit::Reject, // epoch before HELLO established the stream
        };
        let seq = e.id.raw();
        if seq < next {
            shared.tel.registry().counter(names::NET_EPOCHS_DEDUPED).inc();
            return Admit::Duplicate;
        }
        if seq > next {
            // A gap inside a CRC-framed session: impossible without a
            // decode error first, so treat as protocol violation.
            return Admit::Reject;
        }
        if st.queue.len() < shared.cfg.max_buffered {
            st.queue.push_back(e);
            st.next_expected = Some(next + 1);
            shared.queue_cv.notify_all();
            return Admit::Admitted;
        }
        // Buffer full: block the socket side until the consumer drains.
        let (guard, timed_out) = match shared.queue_cv.wait_timeout(st, shared.cfg.io_timeout) {
            Ok(x) => x,
            Err(_) => return Admit::Reject,
        };
        st = guard;
        if shared.closed.load(Ordering::Relaxed) {
            return Admit::Reject;
        }
        let _ = timed_out; // loop re-checks capacity either way
    }
}

/// Sends a cumulative `Ack` every time the durable floor advances.
fn ack_writer(mut conn: TcpStream, shared: &Arc<RecvShared>, alive: &AtomicBool) {
    let mut sent: Option<u64> = None;
    loop {
        let to_send = {
            let Ok(mut st) = shared.state.lock() else { return };
            while st.last_durable == sent
                && alive.load(Ordering::Relaxed)
                && !shared.closed.load(Ordering::Relaxed)
            {
                let Ok((guard, _)) = shared.ack_cv.wait_timeout(st, shared.cfg.io_timeout) else {
                    return;
                };
                st = guard;
            }
            st.last_durable
        };
        if !alive.load(Ordering::Relaxed) || shared.closed.load(Ordering::Relaxed) {
            return;
        }
        if let Some(d) = to_send {
            if to_send != sent {
                if write_frame(&mut conn, &Frame::Ack { last_durable_epoch: d }).is_err() {
                    alive.store(false, Ordering::Relaxed);
                    let _ = conn.shutdown(std::net::Shutdown::Both);
                    return;
                }
                sent = to_send;
            }
        }
    }
}

/// The received stream as an [`EpochSource`]: the bridge into
/// `ingest_epoch` / `DurableBackup` / the fleet.
pub struct NetEpochSource {
    shared: Arc<RecvShared>,
}

impl std::fmt::Debug for NetEpochSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetEpochSource").finish()
    }
}

impl NetEpochSource {
    /// Blocks until the first handshake announces the stream identity.
    fn stream_identity(&self) -> (u64, u64) {
        let Ok(mut st) = self.shared.state.lock() else { return (0, 0) };
        loop {
            if let Some(id) = st.hello {
                return id;
            }
            if self.shared.closed.load(Ordering::Relaxed) {
                return (0, 0);
            }
            match self.shared.queue_cv.wait_timeout(st, Duration::from_millis(50)) {
                Ok((guard, _)) => st = guard,
                Err(_) => return (0, 0),
            }
        }
    }
}

impl EpochSource for NetEpochSource {
    fn num_epochs(&self) -> usize {
        self.stream_identity().1 as usize
    }

    fn first_seq(&self) -> u64 {
        self.stream_identity().0
    }

    fn fetch(&mut self, seq: u64, _attempt: u32) -> Option<EncodedEpoch> {
        let deadline = Instant::now() + self.shared.cfg.fetch_timeout;
        let Ok(mut st) = self.shared.state.lock() else { return None };
        loop {
            // Drop anything the consumer has moved past (it re-fetches
            // only forward; stale buffer entries are redeliveries).
            while st.queue.front().is_some_and(|e| e.id.raw() < seq) {
                st.queue.pop_front();
            }
            if st.queue.front().is_some_and(|e| e.id.raw() == seq) {
                let e = st.queue.pop_front();
                st.last_durable = Some(st.last_durable.map_or(seq, |d| d.max(seq)));
                // Wake the ack writer and a backpressured socket reader.
                self.shared.ack_cv.notify_all();
                self.shared.queue_cv.notify_all();
                return e;
            }
            let now = Instant::now();
            if now >= deadline || self.shared.closed.load(Ordering::Relaxed) {
                // Not delivered yet: report a stall so the ingest retry
                // loop backs off and re-requests.
                return None;
            }
            match self.shared.queue_cv.wait_timeout(st, deadline - now) {
                Ok((guard, _)) => st = guard,
                Err(_) => return None,
            }
        }
    }
}
