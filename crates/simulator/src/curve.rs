//! Visibility curves: when does a commit timestamp become visible?
//!
//! A curve is a monotone step function from virtual wall time to the
//! highest published commit timestamp (`tg_cmt_ts` of one group, or
//! `global_cmt_ts`). Queries invert it: "at what wall time did this group
//! first cover my `qts`?"

use aets_common::Timestamp;

/// Monotone `(wall time, published commit ts)` breakpoints.
#[derive(Debug, Clone, Default)]
pub struct VisibilityCurve {
    points: Vec<(u64, u64)>, // (wall us, commit ts us), both non-decreasing
}

impl VisibilityCurve {
    /// Creates an empty curve (nothing ever published).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a publication event. Out-of-order or stale points are
    /// clamped to keep the curve monotone (mirroring the board's
    /// `fetch_max`).
    pub fn push(&mut self, wall_us: u64, commit_ts: Timestamp) {
        let ts = commit_ts.as_micros();
        if let Some(&(lw, lt)) = self.points.last() {
            let w = wall_us.max(lw);
            let t = ts.max(lt);
            if t == lt {
                return; // no new information
            }
            self.points.push((w, t));
        } else {
            self.points.push((wall_us, ts));
        }
    }

    /// Number of breakpoints.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve has no breakpoints.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Published commit timestamp at `wall_us`.
    pub fn value_at(&self, wall_us: u64) -> Timestamp {
        match self.points.partition_point(|(w, _)| *w <= wall_us) {
            0 => Timestamp::ZERO,
            i => Timestamp::from_micros(self.points[i - 1].1),
        }
    }

    /// Earliest wall time at which the published timestamp reaches `qts`,
    /// or `None` if it never does.
    pub fn first_time_reaching(&self, qts: Timestamp) -> Option<u64> {
        let t = qts.as_micros();
        let i = self.points.partition_point(|(_, ts)| *ts < t);
        self.points.get(i).map(|(w, _)| *w)
    }

    /// Final published timestamp.
    pub fn final_ts(&self) -> Timestamp {
        self.points.last().map_or(Timestamp::ZERO, |(_, t)| Timestamp::from_micros(*t))
    }

    /// Final wall time.
    pub fn final_wall(&self) -> u64 {
        self.points.last().map_or(0, |(w, _)| *w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    #[test]
    fn value_and_inverse_agree() {
        let mut c = VisibilityCurve::new();
        c.push(10, ts(100));
        c.push(20, ts(250));
        c.push(30, ts(400));
        assert_eq!(c.value_at(5), Timestamp::ZERO);
        assert_eq!(c.value_at(10), ts(100));
        assert_eq!(c.value_at(25), ts(250));
        assert_eq!(c.first_time_reaching(ts(100)), Some(10));
        assert_eq!(c.first_time_reaching(ts(101)), Some(20));
        assert_eq!(c.first_time_reaching(ts(250)), Some(20));
        assert_eq!(c.first_time_reaching(ts(401)), None);
    }

    #[test]
    fn stale_points_are_clamped() {
        let mut c = VisibilityCurve::new();
        c.push(10, ts(100));
        c.push(5, ts(50)); // stale both ways: dropped
        assert_eq!(c.len(), 1);
        c.push(8, ts(200)); // wall goes backwards: clamped to 10
        assert_eq!(c.first_time_reaching(ts(200)), Some(10));
        assert_eq!(c.value_at(9), Timestamp::ZERO); // nothing published before 10
        assert_eq!(c.value_at(10), ts(200));
    }

    #[test]
    fn empty_curve_behaviour() {
        let c = VisibilityCurve::new();
        assert_eq!(c.value_at(1000), Timestamp::ZERO);
        assert_eq!(c.first_time_reaching(ts(1)), None);
        assert_eq!(c.final_ts(), Timestamp::ZERO);
        assert!(c.is_empty());
    }

    #[test]
    fn monotone_invariant_holds_under_many_pushes() {
        let mut c = VisibilityCurve::new();
        for i in 0..1000u64 {
            c.push(i * 7 % 501, ts(i * 13 % 997));
        }
        let pts: Vec<(u64, u64)> = (0..c.len()).map(|i| c.points[i]).collect();
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
    }
}
