//! Workload profiles: the per-epoch, per-group shape of a log stream.
//!
//! The simulator does not touch encoded bytes; it consumes counts — how
//! many entries each transaction routes to each group, and each
//! transaction's commit timestamp. Profiles are derived from the same
//! `TxnLog` streams and `TableGrouping`s the real engines use, so the two
//! harnesses cannot drift.

use aets_common::{GroupId, Timestamp, TxnId};
use aets_replay::TableGrouping;
use aets_wal::TxnLog;

/// One transaction's footprint in one group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxnSlice {
    /// Transaction id.
    pub txn_id: TxnId,
    /// Commit timestamp on the primary.
    pub commit_ts: Timestamp,
    /// Entries this transaction routes to the group.
    pub entries: u32,
    /// Encoded bytes of those entries.
    pub bytes: u64,
}

/// A group's work for one epoch, in commit order.
#[derive(Debug, Clone, Default)]
pub struct GroupEpochProfile {
    /// Mini-transactions (commit_order_queue), in commit order.
    pub txns: Vec<TxnSlice>,
    /// Total entries.
    pub entries: u64,
    /// Total bytes.
    pub bytes: u64,
}

/// One epoch's profile.
#[derive(Debug, Clone)]
pub struct EpochProfile {
    /// Per-group work, indexed by `GroupId`.
    pub groups: Vec<GroupEpochProfile>,
    /// Commit timestamp of the epoch's last transaction.
    pub max_commit_ts: Timestamp,
    /// Transactions in the epoch.
    pub txn_count: usize,
    /// Total entries in the epoch.
    pub entries: u64,
    /// Time the epoch becomes available on the backup (last commit +
    /// replication latency). `ZERO` for pre-resident replay runs.
    pub arrival: Timestamp,
}

/// Builds per-epoch profiles from a committed transaction stream.
///
/// `paced` controls arrival times: `true` models real-time replication
/// (epoch arrives `replication_latency_us` after its last commit), `false`
/// models the RQ2 setup where all logs are pre-resident in backup memory.
pub fn profile_epochs(
    txns: &[TxnLog],
    epoch_size: usize,
    grouping: &TableGrouping,
    replication_latency_us: u64,
    paced: bool,
) -> Vec<EpochProfile> {
    assert!(epoch_size > 0, "epoch_size must be positive");
    let num_groups = grouping.num_groups();
    let mut out = Vec::with_capacity(txns.len() / epoch_size + 1);
    for chunk in txns.chunks(epoch_size) {
        let mut groups: Vec<GroupEpochProfile> = vec![GroupEpochProfile::default(); num_groups];
        let mut entries_total = 0u64;
        for t in chunk {
            // Count per group.
            let mut counts = vec![(0u32, 0u64); num_groups];
            for e in &t.entries {
                let g = grouping.group_of(e.table).index();
                counts[g].0 += 1;
                counts[g].1 += e.wire_size() as u64;
                entries_total += 1;
            }
            for (g, (n, b)) in counts.into_iter().enumerate() {
                if n > 0 || t.entries.is_empty() {
                    // Heartbeats land in every group.
                    groups[g].txns.push(TxnSlice {
                        txn_id: t.txn_id,
                        commit_ts: t.commit_ts,
                        entries: n,
                        bytes: b,
                    });
                    groups[g].entries += n as u64;
                    groups[g].bytes += b;
                }
            }
        }
        let max_commit_ts = chunk.last().expect("non-empty chunk").commit_ts;
        let arrival = if paced {
            max_commit_ts.saturating_add(replication_latency_us)
        } else {
            Timestamp::ZERO
        };
        out.push(EpochProfile {
            groups,
            max_commit_ts,
            txn_count: chunk.len(),
            entries: entries_total,
            arrival,
        });
    }
    out
}

impl EpochProfile {
    /// Per-group pending bytes (`n_gi` for the allocation solver).
    pub fn pending_bytes(&self) -> Vec<u64> {
        self.groups.iter().map(|g| g.bytes).collect()
    }

    /// Work of one group.
    pub fn group(&self, g: GroupId) -> &GroupEpochProfile {
        &self.groups[g.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::FxHashSet;
    use aets_workloads::tpcc::{self, TpccConfig};

    fn setup() -> (Vec<TxnLog>, TableGrouping) {
        let w = tpcc::generate(&TpccConfig { num_txns: 1000, warehouses: 2, ..Default::default() });
        let (groups, rates) = tpcc::paper_grouping();
        let g = TableGrouping::new(w.table_names.len(), groups, rates, &w.analytic_tables).unwrap();
        (w.txns, g)
    }

    #[test]
    fn profiles_preserve_totals() {
        let (txns, g) = setup();
        let total_entries: usize = txns.iter().map(|t| t.entries.len()).sum();
        let profiles = profile_epochs(&txns, 256, &g, 500, true);
        assert_eq!(profiles.len(), 4);
        let sum: u64 = profiles.iter().map(|p| p.entries).sum();
        assert_eq!(sum as usize, total_entries);
        let txn_sum: usize = profiles.iter().map(|p| p.txn_count).sum();
        assert_eq!(txn_sum, txns.len());
    }

    #[test]
    fn group_queues_are_in_commit_order() {
        let (txns, g) = setup();
        let profiles = profile_epochs(&txns, 128, &g, 500, true);
        for p in &profiles {
            for gp in &p.groups {
                assert!(gp.txns.windows(2).all(|w| w[0].txn_id < w[1].txn_id));
                let n: u64 = gp.txns.iter().map(|t| t.entries as u64).sum();
                assert_eq!(n, gp.entries);
            }
        }
    }

    #[test]
    fn paced_arrivals_follow_commits() {
        let (txns, g) = setup();
        let paced = profile_epochs(&txns, 128, &g, 500, true);
        for p in &paced {
            assert_eq!(p.arrival, p.max_commit_ts.saturating_add(500));
        }
        let resident = profile_epochs(&txns, 128, &g, 500, false);
        assert!(resident.iter().all(|p| p.arrival == Timestamp::ZERO));
    }

    #[test]
    fn single_grouping_routes_everything_to_group_zero() {
        let (txns, _) = setup();
        let g = TableGrouping::single(9, &FxHashSet::default());
        let profiles = profile_epochs(&txns, 512, &g, 0, false);
        for p in &profiles {
            assert_eq!(p.groups.len(), 1);
            assert_eq!(p.groups[0].entries, p.entries);
        }
    }
}
