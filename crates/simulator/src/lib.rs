//! Deterministic analytic simulator of the replay pipelines.
//!
//! The paper's performance evaluation needs a 64-core testbed; this crate
//! substitutes a virtual-clock model so thread-count sweeps (Figure 11),
//! visibility-delay experiments (Figures 8c/9c/10/12/13), and breakdowns
//! (Table II) run deterministically anywhere. The model shares the
//! grouping and thread-allocation code with the real engines in
//! `aets-replay`; only time comes from the [`CostModel`].

pub mod cost;
pub mod curve;
pub mod engines;
pub mod profile;
pub mod queries;

pub use cost::CostModel;
pub use curve::VisibilityCurve;
pub use engines::{simulate, SimAetsConfig, SimConfig, SimEngineKind, SimOutcome};
pub use profile::{profile_epochs, EpochProfile, GroupEpochProfile, TxnSlice};
pub use queries::{evaluate_by_class, evaluate_by_slot, evaluate_queries, query_delay, DelayStats};
