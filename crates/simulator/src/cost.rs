//! Per-operation cost model of the replay pipeline.
//!
//! The paper's performance experiments ran on three 64-core Xeon servers;
//! this reproduction runs on whatever container it lands in (often a
//! single core), so thread-count sweeps and visibility-delay measurements
//! use a *virtual* clock driven by this cost model instead of wall time.
//! The absolute values are nominal microseconds chosen so that the ratios
//! the paper describes hold:
//!
//! * metadata parsing (ATR/AETS dispatch) is far cheaper than full
//!   data-image parsing (C5 dispatch) — Section VI-B;
//! * ATR's operation-sequence check adds per-entry work *plus* a
//!   synchronization penalty that grows with thread count — the paper's
//!   explanation for ATR's scalability knee after 16 threads (RQ2);
//! * C5's total per-entry work slightly exceeds ATR's, but it carries no
//!   synchronization penalty, so it overtakes ATR beyond ~32 threads;
//! * TPLR/AETS phase-1 translate dominates; the commit phase only links
//!   pre-materialized cells (Table II: replay >= 98 %, commit < 1 %).
//!
//! The per-entry decode costs (`translate`, `atr_entry`, `c5_entry`) are
//! calibrated against the zero-copy codec: `Text`/`Bytes` values are
//! shared slices of the epoch buffer, so decoding no longer pays a heap
//! copy per value and all three dropped by the same ~15 % relative to
//! the original owned-`String` codec (the criterion `codec` benches in
//! `results/BENCH_pipeline.json` are the measured source). The metadata
//! scan was already copy-free, so `meta_parse` is unchanged.
//!
//! The raw-speed ingest campaign (`results/BENCH_ingest.json`) shaved
//! the hot path again: one-pass batched decode with a reused scratch
//! vector cut per-record decode by ~10 %, so `translate` drops in step,
//! and replacing the mutexed commit-slot protocol with the lock-free
//! SPSC queues cut the per-entry hand-off and per-txn commit
//! bookkeeping (`queue_contention_per_thread`, `commit_txn`). The CRC
//! kernel's 4x is invisible here — frame checksums are verified at
//! ingest, which the model charges as replication latency, not replay.
//!
//! Every figure regenerated from this model is labelled as model-derived
//! in EXPERIMENTS.md; the ratios, not the absolute microseconds, are the
//! reproduction target.

/// Nominal per-operation costs in microseconds.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Dispatcher metadata parse + route, per entry (ATR, AETS, TPLR).
    pub meta_parse: f64,
    /// Dispatcher routing floor for C5 (key already parsed by workers).
    pub c5_route: f64,
    /// TPLR phase-1 translate (full decode + index lookup), per entry.
    pub translate: f64,
    /// Commit-phase cell link, per entry (AETS/TPLR phase 2).
    pub append: f64,
    /// Commit-phase bookkeeping per transaction (waiting_commit_list,
    /// commit_order_queue validation, publish).
    pub commit_txn: f64,
    /// ATR per-entry work: decode + apply + RVID sequence check.
    pub atr_entry: f64,
    /// ATR synchronization penalty per entry, multiplied by the thread
    /// count (operation-sequence collisions force inter-thread waits).
    pub atr_sync_per_thread: f64,
    /// C5 per-entry work: full data-image parse + apply.
    pub c5_entry: f64,
    /// Shared-task-queue contention per entry, multiplied by threads and
    /// divided by the number of active queues (one per group).
    pub queue_contention_per_thread: f64,
    /// Fixed coordination cost per replay stage per epoch (thread wakeup,
    /// allocation, barriers).
    pub stage_setup: f64,
    /// One-way replication latency applied to epoch arrival.
    pub replication_latency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            meta_parse: 0.008,
            c5_route: 0.020,
            translate: 0.78,
            append: 0.008,
            commit_txn: 0.035,
            atr_entry: 0.97,
            atr_sync_per_thread: 0.00025,
            c5_entry: 1.55,
            queue_contention_per_thread: 0.004,
            stage_setup: 30.0,
            replication_latency: 500.0,
        }
    }
}

impl CostModel {
    /// Scales every per-entry/per-txn cost by `k` (used to position the
    /// offered load relative to replay capacity, e.g. for the epoch-size
    /// experiment where the backup runs near saturation).
    pub fn scaled(&self, k: f64) -> CostModel {
        CostModel {
            meta_parse: self.meta_parse * k,
            c5_route: self.c5_route * k,
            translate: self.translate * k,
            append: self.append * k,
            commit_txn: self.commit_txn * k,
            atr_entry: self.atr_entry * k,
            atr_sync_per_thread: self.atr_sync_per_thread * k,
            c5_entry: self.c5_entry * k,
            queue_contention_per_thread: self.queue_contention_per_thread * k,
            stage_setup: self.stage_setup,
            replication_latency: self.replication_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_respect_paper_ratios() {
        let c = CostModel::default();
        assert!(c.meta_parse * 10.0 < c.c5_route * 10.0 + c.c5_entry, "meta << full parse");
        assert!(c.append < c.translate / 10.0, "commit link is cheap vs translate");
        assert!(c.atr_entry > c.translate, "ATR adds sequence-check work");
        assert!(c.c5_entry > c.atr_entry, "C5 per-entry work slightly exceeds ATR");
    }

    #[test]
    fn scaling_preserves_ratios() {
        let c = CostModel::default().scaled(3.0);
        let d = CostModel::default();
        assert!((c.translate / c.atr_entry - d.translate / d.atr_entry).abs() < 1e-12);
        assert_eq!(c.stage_setup, d.stage_setup);
    }
}
