//! Visibility-delay evaluation of analytical query streams (Algorithm 3
//! on the virtual clock).

use crate::engines::SimOutcome;
use aets_common::{GroupId, TableId, Timestamp};
use aets_workloads::QueryInstance;

/// Delay statistics for a set of queries.
#[derive(Debug, Clone, Default)]
pub struct DelayStats {
    /// Per-query delays in µs (order matches the evaluated stream).
    pub delays: Vec<u64>,
    /// Queries whose data was never replayed within the run (excluded
    /// from the aggregate statistics).
    pub unresolved: usize,
}

impl DelayStats {
    /// Mean delay in µs.
    pub fn mean(&self) -> f64 {
        if self.delays.is_empty() {
            0.0
        } else {
            self.delays.iter().sum::<u64>() as f64 / self.delays.len() as f64
        }
    }

    /// p-th percentile delay in µs (p in [0, 100]).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.delays.is_empty() {
            return 0;
        }
        let mut v = self.delays.clone();
        v.sort_unstable();
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)]
    }

    /// Maximum delay in µs.
    pub fn max(&self) -> u64 {
        self.delays.iter().copied().max().unwrap_or(0)
    }
}

/// Computes the visibility delay of one query: the time between its
/// arrival `qts` and the moment Algorithm 3 admits it (all its groups
/// reach `qts`, or the global watermark does). `None` if the run ended
/// before the data became visible.
pub fn query_delay(outcome: &SimOutcome, gids: &[GroupId], qts: Timestamp) -> Option<u64> {
    // All groups must reach qts: the admission time is the max over
    // groups of each group's first-reach time.
    let mut group_wall: u64 = 0;
    for g in gids {
        match outcome.group_curves[g.index()].first_time_reaching(qts) {
            Some(w) => group_wall = group_wall.max(w),
            None => group_wall = u64::MAX,
        }
    }
    if gids.is_empty() {
        group_wall = 0;
    }
    let global_wall = outcome.global_curve.first_time_reaching(qts).unwrap_or(u64::MAX);
    let admitted = group_wall.min(global_wall);
    if admitted == u64::MAX {
        return None;
    }
    Some(admitted.saturating_sub(qts.as_micros()))
}

/// Evaluates a whole query stream. `map_groups` translates a query's
/// table footprint to the engine's board groups (the grouping's
/// `groups_of` for AETS; the constant `[0]` for ungrouped baselines).
pub fn evaluate_queries(
    outcome: &SimOutcome,
    queries: &[QueryInstance],
    mut map_groups: impl FnMut(&[TableId]) -> Vec<GroupId>,
) -> DelayStats {
    let mut stats = DelayStats::default();
    for q in queries {
        let gids = map_groups(&q.tables);
        match query_delay(outcome, &gids, q.arrival) {
            Some(d) => stats.delays.push(d),
            None => stats.unresolved += 1,
        }
    }
    stats
}

/// Evaluates a query stream bucketed by query class (CH-benCHmark's
/// per-query Figure 10). Returns `(class, stats)` sorted by class.
pub fn evaluate_by_class(
    outcome: &SimOutcome,
    queries: &[QueryInstance],
    mut map_groups: impl FnMut(&[TableId]) -> Vec<GroupId>,
) -> Vec<(u32, DelayStats)> {
    let mut by_class: std::collections::BTreeMap<u32, DelayStats> =
        std::collections::BTreeMap::new();
    for q in queries {
        let gids = map_groups(&q.tables);
        let entry = by_class.entry(q.class).or_default();
        match query_delay(outcome, &gids, q.arrival) {
            Some(d) => entry.delays.push(d),
            None => entry.unresolved += 1,
        }
    }
    by_class.into_iter().collect()
}

/// Evaluates a query stream bucketed by time slot of length
/// `slot_len_us` (Figure 13's per-minute series). Returns mean delay per
/// slot; empty slots yield 0.
pub fn evaluate_by_slot(
    outcome: &SimOutcome,
    queries: &[QueryInstance],
    slot_len_us: u64,
    num_slots: usize,
    mut map_groups: impl FnMut(&[TableId]) -> Vec<GroupId>,
) -> Vec<f64> {
    let mut sums = vec![0u64; num_slots];
    let mut counts = vec![0u64; num_slots];
    for q in queries {
        let slot = (q.arrival.as_micros() / slot_len_us.max(1)) as usize;
        if slot >= num_slots {
            continue;
        }
        let gids = map_groups(&q.tables);
        if let Some(d) = query_delay(outcome, &gids, q.arrival) {
            sums[slot] += d;
            counts[slot] += 1;
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(s, c)| if *c == 0 { 0.0 } else { *s as f64 / *c as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::VisibilityCurve;

    fn outcome_with(groups: Vec<VisibilityCurve>, global: VisibilityCurve) -> SimOutcome {
        SimOutcome {
            name: "test",
            group_curves: groups,
            global_curve: global,
            wall_us: 1000,
            entries: 0,
            txns: 0,
            dispatch_busy: 0.0,
            replay_busy: 0.0,
            commit_busy: 0.0,
            stage1_wall: 0.0,
            stage2_wall: 0.0,
        }
    }

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    #[test]
    fn delay_waits_for_the_slowest_group() {
        let mut fast = VisibilityCurve::new();
        fast.push(50, ts(100));
        let mut slow = VisibilityCurve::new();
        slow.push(400, ts(100));
        let o = outcome_with(vec![fast, slow], VisibilityCurve::new());
        let d = query_delay(&o, &[GroupId::new(0), GroupId::new(1)], ts(100)).unwrap();
        assert_eq!(d, 300); // admitted at wall 400, arrived at 100
        let d0 = query_delay(&o, &[GroupId::new(0)], ts(100)).unwrap();
        assert_eq!(d0, 0); // wall 50 < qts 100: already visible on arrival
    }

    #[test]
    fn global_watermark_rescues_idle_groups() {
        let idle = VisibilityCurve::new(); // group never publishes
        let mut global = VisibilityCurve::new();
        global.push(700, ts(500));
        let o = outcome_with(vec![idle], global);
        let d = query_delay(&o, &[GroupId::new(0)], ts(500)).unwrap();
        assert_eq!(d, 200);
    }

    #[test]
    fn unresolved_when_never_visible() {
        let o = outcome_with(vec![VisibilityCurve::new()], VisibilityCurve::new());
        assert_eq!(query_delay(&o, &[GroupId::new(0)], ts(1)), None);
    }

    #[test]
    fn stats_aggregate() {
        let s = DelayStats { delays: vec![10, 20, 30, 40, 100], ..Default::default() };
        assert_eq!(s.mean(), 40.0);
        assert_eq!(s.percentile(50.0), 30);
        assert_eq!(s.percentile(100.0), 100);
        assert_eq!(s.max(), 100);
        assert_eq!(DelayStats::default().percentile(99.0), 0);
    }

    #[test]
    fn slot_bucketing() {
        let mut g = VisibilityCurve::new();
        g.push(150, ts(100));
        g.push(1100, ts(1000));
        let o = outcome_with(vec![g], VisibilityCurve::new());
        let queries = vec![
            QueryInstance { id: 0, class: 0, arrival: ts(100), tables: vec![] },
            QueryInstance { id: 1, class: 0, arrival: ts(1000), tables: vec![] },
        ];
        let slots = evaluate_by_slot(&o, &queries, 500, 3, |_| vec![GroupId::new(0)]);
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[0], 50.0); // admitted 150, arrival 100
        assert_eq!(slots[2], 100.0); // admitted 1100, arrival 1000
    }
}
