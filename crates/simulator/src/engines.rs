//! Analytic simulation of each replay engine on a virtual clock.
//!
//! For every epoch the simulator computes dispatch, replay, and commit
//! times from the [`CostModel`] and the epoch's per-group profile, then
//! emits visibility curves: per-group `tg_cmt_ts` publications (linear in
//! committed-transaction order within the epoch) and the `global_cmt_ts`
//! high-water mark at epoch completion. The same grouping and
//! thread-allocation code as the real engine drives the AETS variant, so
//! the simulation cannot diverge structurally from the implementation.

use crate::cost::CostModel;
use crate::curve::VisibilityCurve;
use crate::profile::EpochProfile;
use aets_common::GroupId;
use aets_replay::{allocate_threads, TableGrouping, UrgencyMode};

/// AETS-variant knobs (also covers the TPLR baseline: single group, one
/// stage).
#[derive(Debug, Clone)]
pub struct SimAetsConfig {
    /// Two-stage (hot-first) replay.
    pub two_stage: bool,
    /// Urgency mode for thread allocation.
    pub urgency: UrgencyMode,
    /// Adaptive allocation (λ·n weights) vs even split.
    pub adaptive: bool,
    /// Dispatcher runs on its own thread, overlapping the metadata scan
    /// of epoch `e+1` with the replay of epoch `e` (mirrors the real
    /// engine's `pipeline_depth > 0`). Dispatch then only sits on the
    /// critical path when replay catches up with the dispatcher.
    pub pipelined: bool,
}

impl Default for SimAetsConfig {
    fn default() -> Self {
        Self { two_stage: true, urgency: UrgencyMode::Log, adaptive: true, pipelined: true }
    }
}

/// Which engine to simulate.
#[derive(Debug, Clone)]
pub enum SimEngineKind {
    /// AETS / TPLR (two-phase replay over a grouping).
    TwoPhase(SimAetsConfig),
    /// ATR baseline.
    Atr,
    /// C5 baseline with its snapshot publication period (µs).
    C5 {
        /// Snapshot publication period in microseconds (paper: 5 ms).
        snapshot_interval_us: u64,
    },
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Engine variant.
    pub kind: SimEngineKind,
    /// Replay worker threads `T`.
    pub threads: usize,
    /// Cost model.
    pub cost: CostModel,
}

/// Result of one simulated replay run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Engine label.
    pub name: &'static str,
    /// Per-group visibility curves (one per grouping group; a single
    /// curve for ATR/C5).
    pub group_curves: Vec<VisibilityCurve>,
    /// Global commit high-water curve.
    pub global_curve: VisibilityCurve,
    /// Virtual wall time at which the last epoch finished (µs).
    pub wall_us: u64,
    /// Total entries replayed.
    pub entries: u64,
    /// Total transactions replayed.
    pub txns: usize,
    /// Busy-time totals (µs) for the Table II breakdown.
    pub dispatch_busy: f64,
    /// Aggregate replay (phase-1/apply) busy time, µs.
    pub replay_busy: f64,
    /// Aggregate commit busy time, µs.
    pub commit_busy: f64,
    /// Total virtual wall time spent in stage 1 (hot groups).
    pub stage1_wall: f64,
    /// Total virtual wall time spent in stage 2 (cold groups).
    pub stage2_wall: f64,
}

impl SimOutcome {
    /// Replay throughput in entries per virtual second.
    pub fn entries_per_sec(&self) -> f64 {
        if self.wall_us == 0 {
            0.0
        } else {
            self.entries as f64 / (self.wall_us as f64 / 1e6)
        }
    }

    /// Table II breakdown fractions (dispatch, replay, commit).
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let total = self.dispatch_busy + self.replay_busy + self.commit_busy;
        if total <= 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (self.dispatch_busy / total, self.replay_busy / total, self.commit_busy / total)
        }
    }
}

/// Per-epoch group access rates (e.g. predicted by DTGM). Receives the
/// epoch index; returns one rate per group.
pub type SimRateFn<'a> = &'a dyn Fn(usize) -> Vec<f64>;

/// Simulates `cfg.kind` over `profiles`. `grouping` must be the grouping
/// the profiles were built with; `rates_fn` optionally overrides the
/// grouping's static rates per epoch.
pub fn simulate(
    profiles: &[EpochProfile],
    grouping: &TableGrouping,
    cfg: &SimConfig,
    rates_fn: Option<SimRateFn<'_>>,
) -> SimOutcome {
    match &cfg.kind {
        SimEngineKind::TwoPhase(ac) => simulate_two_phase(profiles, grouping, cfg, ac, rates_fn),
        SimEngineKind::Atr => simulate_atr(profiles, cfg),
        SimEngineKind::C5 { snapshot_interval_us } => {
            simulate_c5(profiles, cfg, *snapshot_interval_us)
        }
    }
}

fn simulate_two_phase(
    profiles: &[EpochProfile],
    grouping: &TableGrouping,
    cfg: &SimConfig,
    ac: &SimAetsConfig,
    rates_fn: Option<SimRateFn<'_>>,
) -> SimOutcome {
    assert!(cfg.threads > 0);
    let ng = grouping.num_groups();
    let name = if ng == 1 && !ac.two_stage { "tplr" } else { "aets" };
    let c = &cfg.cost;
    let mut out = SimOutcome {
        name,
        group_curves: vec![VisibilityCurve::new(); ng],
        global_curve: VisibilityCurve::new(),
        wall_us: 0,
        entries: 0,
        txns: 0,
        dispatch_busy: 0.0,
        replay_busy: 0.0,
        commit_busy: 0.0,
        stage1_wall: 0.0,
        stage2_wall: 0.0,
    };
    let mut clock = 0f64;
    // Virtual clock of the dispatcher thread (pipelined mode): it scans
    // epochs serially, ahead of the replay loop.
    let mut dispatch_clock = 0f64;

    for (eidx, p) in profiles.iter().enumerate() {
        assert_eq!(p.groups.len(), ng, "profile grouping mismatch");
        let dispatch = p.entries as f64 * c.meta_parse;
        out.dispatch_busy += dispatch;
        let mut t = if ac.pipelined {
            // Dispatch of this epoch started as soon as it arrived and the
            // dispatcher was free; replay starts once both the previous
            // epoch's replay and this epoch's dispatch are done. In steady
            // state the scan of e+1 hides behind the replay of e.
            dispatch_clock = dispatch_clock.max(p.arrival.as_micros() as f64) + dispatch;
            clock.max(dispatch_clock)
        } else {
            clock.max(p.arrival.as_micros() as f64) + dispatch
        };

        let rates: Vec<f64> = match rates_fn {
            Some(f) => f(eidx),
            None => (0..ng as u32).map(|g| grouping.rate(GroupId::new(g))).collect(),
        };

        let stages: Vec<Vec<GroupId>> = if ac.two_stage {
            vec![grouping.hot_groups(), grouping.cold_groups()]
        } else {
            vec![(0..ng as u32).map(GroupId::new).collect()]
        };

        for (sidx, stage) in stages.iter().enumerate() {
            let work: Vec<GroupId> =
                stage.iter().copied().filter(|g| !p.group(*g).txns.is_empty()).collect();
            if work.is_empty() {
                continue;
            }
            // Allocate the full thread budget across this stage's groups.
            let mut pending = vec![0u64; ng];
            for g in &work {
                // +1 so heartbeat-only groups still register as working.
                pending[g.index()] = p.group(*g).bytes + 1;
            }
            let alloc = if ac.adaptive {
                allocate_threads(cfg.threads, &pending, &rates, ac.urgency)
                    .expect("allocation inputs are valid")
            } else {
                let share = (cfg.threads / work.len()).max(1);
                let mut a = vec![0usize; ng];
                for g in &work {
                    a[g.index()] = share;
                }
                a
            };
            let queues = work.len() as f64;
            let contention = c.queue_contention_per_thread * cfg.threads as f64 / queues;

            let stage_start = t;
            // A group whose queue is empty this epoch is trivially
            // current the moment dispatch finishes (the dispatcher's
            // dummy-log mechanism, Section V-B).
            for g in stage {
                if p.group(*g).txns.is_empty() {
                    out.group_curves[g.index()].push(stage_start as u64, p.max_commit_ts);
                }
            }
            // Total-capacity bound: with fewer threads than groups the
            // stage cannot beat its aggregate phase-1 work over T threads.
            let total_phase1: f64 =
                work.iter().map(|g| p.group(*g).entries as f64 * (c.translate + contention)).sum();
            let capacity_floor = total_phase1 / cfg.threads as f64;
            let mut stage_time = capacity_floor;
            for g in &work {
                let gp = p.group(*g);
                let t_g = alloc[g.index()].max(1) as f64;
                let phase1 = gp.entries as f64 * (c.translate + contention) / t_g;
                let commit = gp.entries as f64 * c.append + gp.txns.len() as f64 * c.commit_txn;
                let gtime = phase1.max(commit);
                out.replay_busy += gp.entries as f64 * (c.translate + contention);
                out.commit_busy += commit;
                // Commits progress linearly through the group's queue on
                // its dedicated threads.
                let n = gp.txns.len() as f64;
                for (k, slice) in gp.txns.iter().enumerate() {
                    let wall = stage_start + gtime * (k as f64 + 1.0) / n;
                    out.group_curves[g.index()].push(wall as u64, slice.commit_ts);
                }
                stage_time = stage_time.max(gtime);
            }
            // One coordination cost per stage (thread handoff, barriers).
            let stage_end = stage_start + stage_time + c.stage_setup;
            // Stage barrier: every group of the stage is now complete up
            // to the epoch high-water mark.
            for g in stage {
                out.group_curves[g.index()].push(stage_end as u64, p.max_commit_ts);
            }
            if ac.two_stage && sidx == 0 {
                out.stage1_wall += stage_time;
            } else {
                out.stage2_wall += stage_time;
            }
            t = stage_end;
        }

        out.global_curve.push(t as u64, p.max_commit_ts);
        clock = t;
        out.entries += p.entries;
        out.txns += p.txn_count;
    }
    out.wall_us = clock as u64;
    out
}

fn simulate_atr(profiles: &[EpochProfile], cfg: &SimConfig) -> SimOutcome {
    let c = &cfg.cost;
    let t_threads = cfg.threads as f64;
    let mut out = SimOutcome {
        name: "atr",
        group_curves: vec![VisibilityCurve::new()],
        global_curve: VisibilityCurve::new(),
        wall_us: 0,
        entries: 0,
        txns: 0,
        dispatch_busy: 0.0,
        replay_busy: 0.0,
        commit_busy: 0.0,
        stage1_wall: 0.0,
        stage2_wall: 0.0,
    };
    let mut clock = 0f64;
    for p in profiles {
        assert_eq!(p.groups.len(), 1, "ATR profiles must use the single grouping");
        let start = clock.max(p.arrival.as_micros() as f64);
        let entries = p.entries as f64;
        let dispatch = entries * c.meta_parse;
        // Replay: per-entry work divided over threads, plus the
        // operation-sequence synchronization penalty that grows with the
        // thread count.
        let replay =
            entries * c.atr_entry / t_threads + entries * c.atr_sync_per_thread * t_threads;
        let commit = p.txn_count as f64 * c.commit_txn;
        // Dispatch precedes replay (the real engine meta-scans the epoch
        // before spawning workers); replay and the publisher overlap.
        let body = dispatch + replay.max(commit) + c.stage_setup;
        out.dispatch_busy += dispatch;
        out.replay_busy += entries * (c.atr_entry + c.atr_sync_per_thread * t_threads * t_threads);
        out.commit_busy += commit;

        let gp = &p.groups[0];
        let n = gp.txns.len() as f64;
        for (k, slice) in gp.txns.iter().enumerate() {
            let wall = start + dispatch + (body - dispatch) * (k as f64 + 1.0) / n;
            out.group_curves[0].push(wall as u64, slice.commit_ts);
        }
        let end = start + body;
        out.group_curves[0].push(end as u64, p.max_commit_ts);
        out.global_curve.push(end as u64, p.max_commit_ts);
        clock = end;
        out.entries += p.entries;
        out.txns += p.txn_count;
    }
    out.wall_us = clock as u64;
    out
}

fn simulate_c5(
    profiles: &[EpochProfile],
    cfg: &SimConfig,
    snapshot_interval_us: u64,
) -> SimOutcome {
    let c = &cfg.cost;
    let t_threads = cfg.threads as f64;
    let mut out = SimOutcome {
        name: "c5",
        group_curves: vec![VisibilityCurve::new()],
        global_curve: VisibilityCurve::new(),
        wall_us: 0,
        entries: 0,
        txns: 0,
        dispatch_busy: 0.0,
        replay_busy: 0.0,
        commit_busy: 0.0,
        stage1_wall: 0.0,
        stage2_wall: 0.0,
    };
    let mut clock = 0f64;
    for p in profiles {
        assert_eq!(p.groups.len(), 1, "C5 profiles must use the single grouping");
        let start = clock.max(p.arrival.as_micros() as f64);
        let entries = p.entries as f64;
        // Routing is the serial floor; full-image parsing + apply is
        // worker work.
        let dispatch = entries * c.c5_route;
        let replay = entries * c.c5_entry / t_threads;
        let body = replay.max(dispatch) + c.stage_setup;
        out.dispatch_busy += dispatch;
        out.replay_busy += entries * c.c5_entry;
        out.commit_busy += (body / snapshot_interval_us.max(1) as f64).ceil() * 1.0;

        // Snapshot publications every `snapshot_interval_us` of progress.
        let gp = &p.groups[0];
        let n = gp.txns.len();
        let mut tick = snapshot_interval_us as f64;
        while tick < body && n > 0 {
            let frac = tick / body;
            let idx = ((frac * n as f64) as usize).min(n - 1);
            out.group_curves[0].push((start + tick) as u64, gp.txns[idx].commit_ts);
            tick += snapshot_interval_us as f64;
        }
        let end = start + body;
        out.group_curves[0].push(end as u64, p.max_commit_ts);
        out.global_curve.push(end as u64, p.max_commit_ts);
        clock = end;
        out.entries += p.entries;
        out.txns += p.txn_count;
    }
    out.wall_us = clock as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_epochs;
    use aets_common::FxHashSet;
    use aets_workloads::tpcc::{self, TpccConfig};

    fn workload() -> aets_workloads::Workload {
        tpcc::generate(&TpccConfig { num_txns: 4000, warehouses: 2, ..Default::default() })
    }

    fn paper_grouping(w: &aets_workloads::Workload) -> TableGrouping {
        let (groups, rates) = tpcc::paper_grouping();
        TableGrouping::new(w.table_names.len(), groups, rates, &w.analytic_tables).unwrap()
    }

    fn sim(
        w: &aets_workloads::Workload,
        kind: SimEngineKind,
        grouped: bool,
        threads: usize,
    ) -> SimOutcome {
        let grouping = if grouped {
            paper_grouping(w)
        } else {
            TableGrouping::single(w.table_names.len(), &w.analytic_tables)
        };
        let profiles = profile_epochs(&w.txns, 2048, &grouping, 500, false);
        simulate(
            &profiles,
            &grouping,
            &SimConfig { kind, threads, cost: CostModel::default() },
            None,
        )
    }

    fn aets_kind() -> SimEngineKind {
        SimEngineKind::TwoPhase(SimAetsConfig::default())
    }

    fn tplr_kind() -> SimEngineKind {
        SimEngineKind::TwoPhase(SimAetsConfig {
            two_stage: false,
            adaptive: false,
            ..Default::default()
        })
    }

    #[test]
    fn engines_preserve_totals() {
        let w = workload();
        let total: usize = w.txns.iter().map(|t| t.entries.len()).sum();
        for (kind, grouped) in [
            (aets_kind(), true),
            (tplr_kind(), false),
            (SimEngineKind::Atr, false),
            (SimEngineKind::C5 { snapshot_interval_us: 5000 }, false),
        ] {
            let o = sim(&w, kind, grouped, 32);
            assert_eq!(o.entries as usize, total);
            assert_eq!(o.txns, w.txns.len());
            assert!(o.wall_us > 0);
            assert_eq!(o.global_curve.final_ts(), w.txns.last().unwrap().commit_ts);
        }
    }

    #[test]
    fn paper_ordering_at_32_threads() {
        // Figure 8a: AETS > TPLR > {ATR ~ C5} in replay throughput.
        let w = workload();
        let aets = sim(&w, aets_kind(), true, 32).entries_per_sec();
        let tplr = sim(&w, tplr_kind(), false, 32).entries_per_sec();
        let atr = sim(&w, SimEngineKind::Atr, false, 32).entries_per_sec();
        let c5 =
            sim(&w, SimEngineKind::C5 { snapshot_interval_us: 5000 }, false, 32).entries_per_sec();
        assert!(aets > tplr, "AETS {aets} should beat TPLR {tplr}");
        assert!(tplr > atr, "TPLR {tplr} should beat ATR {atr}");
        let ratio = aets / atr;
        assert!((1.05..=1.6).contains(&ratio), "AETS/ATR ratio {ratio} should be ~1.2x");
        let c5_atr = c5 / atr;
        assert!(
            (0.7..=1.3).contains(&c5_atr),
            "C5 and ATR should be comparable at 32 threads, got {c5_atr}"
        );
    }

    #[test]
    fn atr_scalability_flattens_c5_overtakes() {
        // Figure 11 shape: ATR's gain shrinks past 16 threads; C5 passes
        // ATR somewhere beyond 32 threads.
        let w = workload();
        let atr = |t| sim(&w, SimEngineKind::Atr, false, t).entries_per_sec();
        let c5 = |t| {
            sim(&w, SimEngineKind::C5 { snapshot_interval_us: 5000 }, false, t).entries_per_sec()
        };
        let gain_8_16 = atr(16) / atr(8);
        let gain_32_64 = atr(64) / atr(32);
        assert!(gain_8_16 > gain_32_64, "ATR gains must diminish: {gain_8_16} vs {gain_32_64}");
        assert!(c5(16) < atr(16), "C5 below ATR at 16 threads");
        assert!(c5(64) > atr(64), "C5 above ATR at 64 threads");
    }

    #[test]
    fn aets_scales_through_64_threads() {
        let w = workload();
        let t32 = sim(&w, aets_kind(), true, 32).entries_per_sec();
        let t64 = sim(&w, aets_kind(), true, 64).entries_per_sec();
        assert!(t64 > t32 * 1.2, "AETS should keep scaling: {t32} -> {t64}");
    }

    #[test]
    fn pipelined_dispatch_improves_throughput() {
        // The dispatcher thread hides the metadata scan behind replay; at
        // 32 threads the serial scan is a sizable share of the epoch
        // critical path, so pipelining must show a clear throughput gain.
        let w = workload();
        let run = |pipelined: bool| {
            sim(
                &w,
                SimEngineKind::TwoPhase(SimAetsConfig { pipelined, ..Default::default() }),
                true,
                32,
            )
            .entries_per_sec()
        };
        let on = run(true);
        let off = run(false);
        eprintln!("sim 32t entries/s: pipelined {on:.0} vs inline {off:.0}");
        assert!(on > off * 1.1, "pipelining should gain >10%: {on} vs {off}");
    }

    #[test]
    fn breakdown_is_replay_dominated() {
        // Table II: dispatch ~1 %, replay >= 98 %, commit < 1 %.
        let w = workload();
        let o = sim(&w, aets_kind(), true, 32);
        let (d, r, c) = o.breakdown();
        assert!(d < 0.05, "dispatch share {d}");
        assert!(r > 0.90, "replay share {r}");
        assert!(c < 0.05, "commit share {c}");
    }

    #[test]
    fn two_stage_publishes_hot_groups_early() {
        let w = workload();
        let grouping = paper_grouping(&w);
        let profiles = profile_epochs(&w.txns, 2048, &grouping, 500, false);
        let o = simulate(
            &profiles,
            &grouping,
            &SimConfig { kind: aets_kind(), threads: 32, cost: CostModel::default() },
            None,
        );
        // The hot groups must reach the first epoch's high-water mark
        // strictly earlier than the cold groups.
        let first_epoch_ts = profiles[0].max_commit_ts;
        let hot_wall: u64 = grouping
            .hot_groups()
            .iter()
            .map(|g| o.group_curves[g.index()].first_time_reaching(first_epoch_ts).unwrap())
            .max()
            .unwrap();
        let cold_wall: u64 = grouping
            .cold_groups()
            .iter()
            .map(|g| o.group_curves[g.index()].first_time_reaching(first_epoch_ts).unwrap())
            .max()
            .unwrap();
        assert!(
            hot_wall < cold_wall,
            "hot groups ({hot_wall}) must be visible before cold ({cold_wall})"
        );
    }

    #[test]
    fn c5_visibility_is_quantized() {
        let w = workload();
        let grouping = TableGrouping::single(w.table_names.len(), &FxHashSet::default());
        let profiles = profile_epochs(&w.txns, 4000, &grouping, 500, false);
        let o = simulate(
            &profiles,
            &grouping,
            &SimConfig {
                kind: SimEngineKind::C5 { snapshot_interval_us: 5000 },
                threads: 4,
                cost: CostModel::default(),
            },
            None,
        );
        // Far fewer publication points than transactions.
        assert!(o.group_curves[0].len() < w.txns.len() / 2);
    }
}
