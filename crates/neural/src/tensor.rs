//! Dense row-major `f32` tensors with the handful of shapes the DTGM
//! model needs (2-D matrices and 3-D `[channels, nodes, time]` blocks).

use std::fmt;

/// A dense tensor.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}(", self.shape)?;
        let n = self.data.len().min(8);
        for v in &self.data[..n] {
            write!(f, "{v:.3}, ")?;
        }
        if self.data.len() > n {
            write!(f, "...")?;
        }
        write!(f, ")")
    }
}

impl Tensor {
    /// Creates a tensor from raw data. Panics if the element count does
    /// not match the shape.
    pub fn new(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not match {} elements",
            data.len()
        );
        Self { shape: shape.to_vec(), data }
    }

    /// All-zero tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// All-`v` tensor.
    pub fn full(shape: &[usize], v: f32) -> Self {
        Self { shape: shape.to_vec(), data: vec![v; shape.iter().product()] }
    }

    /// Scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Self { shape: vec![1], data: vec![v] }
    }

    /// Uniform random tensor in `[-bound, bound]` (Kaiming-ish init).
    pub fn rand_uniform<R: rand::Rng + ?Sized>(rng: &mut R, shape: &[usize], bound: f32) -> Self {
        let n = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: (0..n).map(|_| rng.gen_range(-bound..=bound)).collect(),
        }
    }

    /// Shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Scalar value (panics unless single-element).
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar tensor");
        self.data[0]
    }

    /// 2-D indexing.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// 3-D indexing.
    #[inline]
    pub fn at3(&self, i: usize, j: usize, k: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3);
        self.data[(i * self.shape[1] + j) * self.shape[2] + k]
    }

    /// Matrix product of 2-D tensors: `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &rhs.data[p * n..(p + 1) * n];
                let dst = &mut out[i * n..(i + 1) * n];
                for (d, b) in dst.iter_mut().zip(row) {
                    *d += a * b;
                }
            }
        }
        Tensor::new(&[m, n], out)
    }

    /// Transpose of a 2-D tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::new(&[n, m], out)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::new(&self.shape, self.data.iter().map(|v| f(*v)).collect())
    }

    /// Elementwise combination of same-shape tensors.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "zip shape mismatch");
        Tensor::new(&self.shape, self.data.iter().zip(&rhs.data).map(|(a, b)| f(*a, *b)).collect())
    }

    /// In-place accumulate `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::new(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at2(0, 2), 3.0);
        assert_eq!(t.at2(1, 0), 4.0);
        let t3 = Tensor::new(&[2, 2, 2], (0..8).map(|v| v as f32).collect());
        assert_eq!(t3.at3(1, 0, 1), 5.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn shape_mismatch_panics() {
        Tensor::new(&[2, 2], vec![1.0; 3]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::new(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::new(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::new(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose2();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at2(2, 1), 6.0);
        assert_eq!(t.transpose2(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::new(&[2], vec![1., -2.]);
        let b = Tensor::new(&[2], vec![3., 4.]);
        assert_eq!(a.zip(&b, |x, y| x * y).data(), &[3., -8.]);
        assert_eq!(a.map(f32::abs).data(), &[1., 2.]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data(), &[4., 2.]);
        assert_eq!(b.sum(), 7.0);
    }

    #[test]
    fn rand_uniform_respects_bound() {
        let mut rng = aets_common::rng::seeded_rng(1);
        let t = Tensor::rand_uniform(&mut rng, &[100], 0.5);
        assert!(t.data().iter().all(|v| v.abs() <= 0.5));
        assert!(t.norm() > 0.0);
    }
}
