//! Reverse-mode automatic differentiation on a tape.
//!
//! Small by design: exactly the operations DTGM needs — elementwise
//! arithmetic, 2-D matmul, activations, causal dilated 1-D convolution
//! over `[channels, nodes, time]` blocks, graph-convolution mixing over
//! the node dimension, dropout masks, and an MAE loss. Backward formulas
//! are hand-written per op and verified against finite differences in the
//! test suite.

use crate::tensor::Tensor;
use std::rc::Rc;

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    Leaf,
    Add(usize, usize),
    Mul(usize, usize),
    MatMul(usize, usize),
    Tanh(usize),
    Sigmoid(usize),
    Relu(usize),
    AddBias { x: usize, b: usize },
    Conv1d { x: usize, w: usize, dilation: usize },
    GcnMix { x: usize, w: usize, adj: Rc<Vec<Tensor>>, supports: Vec<Tensor> },
    SliceLastTime(usize),
    MaskMul { x: usize, mask: Tensor },
    MaeLoss { pred: usize, target: Tensor },
    Scale(usize, f32),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// The autodiff tape. Build a computation per training step, call
/// [`Tape::backward`], read gradients, then drop the tape (parameters
/// live outside as plain tensors).
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Registers a leaf (input or parameter).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Elementwise addition of same-shape tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.zip(&self.nodes[b.0].value, |x, y| x + y);
        self.push(v, Op::Add(a.0, b.0))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.zip(&self.nodes[b.0].value, |x, y| x * y);
        self.push(v, Op::Mul(a.0, b.0))
    }

    /// 2-D matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a.0, b.0))
    }

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::tanh);
        self.push(v, Op::Tanh(a.0))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a.0))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a.0))
    }

    /// Scales by a constant.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * k);
        self.push(v, Op::Scale(a.0, k))
    }

    /// Adds a per-channel bias `b: [C]` to `x: [C, ...]`.
    pub fn add_bias(&mut self, x: Var, b: Var) -> Var {
        let xv = &self.nodes[x.0].value;
        let bv = &self.nodes[b.0].value;
        let c = xv.shape()[0];
        assert_eq!(bv.shape(), &[c], "bias must be [C]");
        let inner: usize = xv.shape()[1..].iter().product();
        let mut out = xv.clone();
        for ci in 0..c {
            let bias = bv.data()[ci];
            for v in &mut out.data_mut()[ci * inner..(ci + 1) * inner] {
                *v += bias;
            }
        }
        self.push(out, Op::AddBias { x: x.0, b: b.0 })
    }

    /// Causal dilated 1-D convolution over time: `x: [C_in, N, T]`,
    /// `w: [C_out, C_in, K]` -> `[C_out, N, T]` (left zero padding).
    pub fn conv1d(&mut self, x: Var, w: Var, dilation: usize) -> Var {
        let xv = &self.nodes[x.0].value;
        let wv = &self.nodes[w.0].value;
        assert_eq!(xv.shape().len(), 3, "conv1d input must be [C,N,T]");
        assert_eq!(wv.shape().len(), 3, "conv1d weight must be [Cout,Cin,K]");
        let (cin, n, t) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
        let (cout, cin2, k) = (wv.shape()[0], wv.shape()[1], wv.shape()[2]);
        assert_eq!(cin, cin2, "conv1d channel mismatch");
        let mut out = Tensor::zeros(&[cout, n, t]);
        for o in 0..cout {
            for c in 0..cin {
                for kk in 0..k {
                    let wgt = wv.at3(o, c, kk);
                    if wgt == 0.0 {
                        continue;
                    }
                    let shift = dilation * (k - 1 - kk);
                    for ni in 0..n {
                        for ti in shift..t {
                            let idx = (o * n + ni) * t + ti;
                            out.data_mut()[idx] += wgt * xv.at3(c, ni, ti - shift);
                        }
                    }
                }
            }
        }
        self.push(out, Op::Conv1d { x: x.0, w: w.0, dilation })
    }

    /// Graph-convolution mixing (`Z = Σ_k C^k H W_k`): `x: [C, N, T]`
    /// mixed over nodes by each adjacency power, then linearly combined:
    /// `adj` holds `[A^0 (=I), A^1, ..., A^K]` as `[N, N]` matrices and
    /// `w: [(K+1)·C, C_out]`.
    pub fn gcn_mix(&mut self, x: Var, w: Var, adj: Rc<Vec<Tensor>>) -> Var {
        let xv = self.nodes[x.0].value.clone();
        let wv = &self.nodes[w.0].value;
        let (c, n, t) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
        let hops = adj.len();
        assert_eq!(wv.shape()[0], hops * c, "gcn weight rows must be (K+1)*C");
        let cout = wv.shape()[1];
        // supports[k][c,n,t] = sum_m A^k[n,m] x[c,m,t]
        let mut supports = Vec::with_capacity(hops);
        for a in adj.iter() {
            assert_eq!(a.shape(), &[n, n], "adjacency must be [N,N]");
            let mut s = Tensor::zeros(&[c, n, t]);
            for ci in 0..c {
                for ni in 0..n {
                    for mi in 0..n {
                        let av = a.at2(ni, mi);
                        if av == 0.0 {
                            continue;
                        }
                        for ti in 0..t {
                            let idx = (ci * n + ni) * t + ti;
                            s.data_mut()[idx] += av * xv.at3(ci, mi, ti);
                        }
                    }
                }
            }
            supports.push(s);
        }
        let mut out = Tensor::zeros(&[cout, n, t]);
        for (k, s) in supports.iter().enumerate() {
            for ci in 0..c {
                for o in 0..cout {
                    let wgt = wv.at2(k * c + ci, o);
                    if wgt == 0.0 {
                        continue;
                    }
                    for ni in 0..n {
                        for ti in 0..t {
                            let idx = (o * n + ni) * t + ti;
                            out.data_mut()[idx] += wgt * s.at3(ci, ni, ti);
                        }
                    }
                }
            }
        }
        self.push(out, Op::GcnMix { x: x.0, w: w.0, adj, supports })
    }

    /// Takes the last time step: `[C, N, T] -> [C, N]`.
    pub fn slice_last_time(&mut self, x: Var) -> Var {
        let xv = &self.nodes[x.0].value;
        let (c, n, t) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
        let mut out = Tensor::zeros(&[c, n]);
        for ci in 0..c {
            for ni in 0..n {
                out.data_mut()[ci * n + ni] = xv.at3(ci, ni, t - 1);
            }
        }
        self.push(out, Op::SliceLastTime(x.0))
    }

    /// Multiplies by a constant mask (inverted dropout: the mask holds
    /// `0` or `1/(1-p)`).
    pub fn mask_mul(&mut self, x: Var, mask: Tensor) -> Var {
        let v = self.nodes[x.0].value.zip(&mask, |a, m| a * m);
        self.push(v, Op::MaskMul { x: x.0, mask })
    }

    /// Mean absolute error against a constant target (the paper's
    /// training loss). Returns a scalar node.
    pub fn mae_loss(&mut self, pred: Var, target: Tensor) -> Var {
        let pv = &self.nodes[pred.0].value;
        assert_eq!(pv.shape(), target.shape(), "loss shape mismatch");
        let n = pv.len() as f32;
        let loss = pv.zip(&target, |p, y| (p - y).abs()).sum() / n;
        self.push(Tensor::scalar(loss), Op::MaeLoss { pred: pred.0, target })
    }

    /// Runs backpropagation from scalar node `root`; returns per-node
    /// gradients (index by `Var`).
    pub fn backward(&self, root: Var) -> Gradients {
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[root.0] = Some(Tensor::full(self.nodes[root.0].value.shape(), 1.0));
        for i in (0..=root.0).rev() {
            let Some(g) = grads[i].clone() else { continue };
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, &g);
                    accumulate(&mut grads, *b, &g);
                }
                Op::Mul(a, b) => {
                    let ga = g.zip(&self.nodes[*b].value, |gv, bv| gv * bv);
                    let gb = g.zip(&self.nodes[*a].value, |gv, av| gv * av);
                    accumulate(&mut grads, *a, &ga);
                    accumulate(&mut grads, *b, &gb);
                }
                Op::MatMul(a, b) => {
                    let av = &self.nodes[*a].value;
                    let bv = &self.nodes[*b].value;
                    let ga = g.matmul(&bv.transpose2());
                    let gb = av.transpose2().matmul(&g);
                    accumulate(&mut grads, *a, &ga);
                    accumulate(&mut grads, *b, &gb);
                }
                Op::Tanh(a) => {
                    let out = &self.nodes[i].value;
                    let ga = g.zip(out, |gv, y| gv * (1.0 - y * y));
                    accumulate(&mut grads, *a, &ga);
                }
                Op::Sigmoid(a) => {
                    let out = &self.nodes[i].value;
                    let ga = g.zip(out, |gv, y| gv * y * (1.0 - y));
                    accumulate(&mut grads, *a, &ga);
                }
                Op::Relu(a) => {
                    let xin = &self.nodes[*a].value;
                    let ga = g.zip(xin, |gv, x| if x > 0.0 { gv } else { 0.0 });
                    accumulate(&mut grads, *a, &ga);
                }
                Op::Scale(a, k) => {
                    let ga = g.map(|gv| gv * k);
                    accumulate(&mut grads, *a, &ga);
                }
                Op::AddBias { x, b } => {
                    accumulate(&mut grads, *x, &g);
                    let xv = &self.nodes[*x].value;
                    let c = xv.shape()[0];
                    let inner: usize = xv.shape()[1..].iter().product();
                    let mut gb = Tensor::zeros(&[c]);
                    for ci in 0..c {
                        gb.data_mut()[ci] = g.data()[ci * inner..(ci + 1) * inner].iter().sum();
                    }
                    accumulate(&mut grads, *b, &gb);
                }
                Op::Conv1d { x, w, dilation } => {
                    let xv = &self.nodes[*x].value;
                    let wv = &self.nodes[*w].value;
                    let (cin, n, t) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
                    let (cout, _, k) = (wv.shape()[0], wv.shape()[1], wv.shape()[2]);
                    let mut gx = Tensor::zeros(xv.shape());
                    let mut gw = Tensor::zeros(wv.shape());
                    for o in 0..cout {
                        for c in 0..cin {
                            for kk in 0..k {
                                let shift = dilation * (k - 1 - kk);
                                let wgt = wv.at3(o, c, kk);
                                let mut wg = 0.0f32;
                                for ni in 0..n {
                                    for ti in shift..t {
                                        let gout = g.at3(o, ni, ti);
                                        if gout == 0.0 {
                                            continue;
                                        }
                                        wg += gout * xv.at3(c, ni, ti - shift);
                                        let idx = (c * n + ni) * t + (ti - shift);
                                        gx.data_mut()[idx] += gout * wgt;
                                    }
                                }
                                gw.data_mut()[(o * cin + c) * k + kk] += wg;
                            }
                        }
                    }
                    accumulate(&mut grads, *x, &gx);
                    accumulate(&mut grads, *w, &gw);
                }
                Op::GcnMix { x, w, adj, supports } => {
                    let xv = &self.nodes[*x].value;
                    let wv = &self.nodes[*w].value;
                    let (c, n, t) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
                    let cout = wv.shape()[1];
                    let mut gw = Tensor::zeros(wv.shape());
                    let mut gx = Tensor::zeros(xv.shape());
                    for (k, s) in supports.iter().enumerate() {
                        // u[c,n,t] = sum_o w[kC+c,o] g[o,n,t]
                        let mut u = Tensor::zeros(&[c, n, t]);
                        for ci in 0..c {
                            for o in 0..cout {
                                let wgt = wv.at2(k * c + ci, o);
                                // dW
                                let mut acc = 0.0f32;
                                for ni in 0..n {
                                    for ti in 0..t {
                                        let gout = g.at3(o, ni, ti);
                                        acc += gout * s.at3(ci, ni, ti);
                                        if wgt != 0.0 {
                                            let idx = (ci * n + ni) * t + ti;
                                            u.data_mut()[idx] += wgt * gout;
                                        }
                                    }
                                }
                                gw.data_mut()[(k * c + ci) * cout + o] += acc;
                            }
                        }
                        // dX += A^k^T applied to u over the node dim.
                        let a = &adj[k];
                        for ci in 0..c {
                            for ni in 0..n {
                                for mi in 0..n {
                                    let av = a.at2(ni, mi);
                                    if av == 0.0 {
                                        continue;
                                    }
                                    for ti in 0..t {
                                        let idx = (ci * n + mi) * t + ti;
                                        gx.data_mut()[idx] += av * u.at3(ci, ni, ti);
                                    }
                                }
                            }
                        }
                    }
                    accumulate(&mut grads, *x, &gx);
                    accumulate(&mut grads, *w, &gw);
                }
                Op::SliceLastTime(x) => {
                    let xv = &self.nodes[*x].value;
                    let (c, n, t) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
                    let mut gx = Tensor::zeros(xv.shape());
                    for ci in 0..c {
                        for ni in 0..n {
                            gx.data_mut()[(ci * n + ni) * t + (t - 1)] = g.at2(ci, ni);
                        }
                    }
                    accumulate(&mut grads, *x, &gx);
                }
                Op::MaskMul { x, mask } => {
                    let gx = g.zip(mask, |gv, m| gv * m);
                    accumulate(&mut grads, *x, &gx);
                }
                Op::MaeLoss { pred, target } => {
                    let pv = &self.nodes[*pred].value;
                    let n = pv.len() as f32;
                    let scale = g.item() / n;
                    let gp = pv.zip(target, |p, y| {
                        if p > y {
                            scale
                        } else if p < y {
                            -scale
                        } else {
                            0.0
                        }
                    });
                    accumulate(&mut grads, *pred, &gp);
                }
            }
        }
        Gradients { grads }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, g: &Tensor) {
    match &mut grads[idx] {
        Some(existing) => existing.add_assign(g),
        slot @ None => *slot = Some(g.clone()),
    }
}

/// Gradients produced by [`Tape::backward`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of `v`, if it participated in the graph.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::rng::seeded_rng;

    /// Finite-difference check of dLoss/dparam for a scalar-loss graph
    /// builder. `build` must construct the same graph for given leaf
    /// values each call.
    fn finite_diff_check(param: Tensor, build: impl Fn(&mut Tape, Var) -> Var, tol: f32) {
        let mut tape = Tape::new();
        let p = tape.leaf(param.clone());
        let loss = build(&mut tape, p);
        let grads = tape.backward(loss);
        let analytic = grads.get(p).expect("param must have a gradient").clone();

        let eps = 1e-2f32;
        for i in 0..param.len() {
            let mut plus = param.clone();
            plus.data_mut()[i] += eps;
            let mut minus = param.clone();
            minus.data_mut()[i] -= eps;
            let lp = {
                let mut t = Tape::new();
                let p = t.leaf(plus);
                let l = build(&mut t, p);
                t.value(l).item()
            };
            let lm = {
                let mut t = Tape::new();
                let p = t.leaf(minus);
                let l = build(&mut t, p);
                t.value(l).item()
            };
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad[{i}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn matmul_and_activation_gradients() {
        let mut rng = seeded_rng(3);
        let w = Tensor::rand_uniform(&mut rng, &[3, 2], 0.8);
        let x = Tensor::rand_uniform(&mut rng, &[2, 4], 0.8);
        let target = Tensor::rand_uniform(&mut rng, &[3, 4], 0.8);
        finite_diff_check(
            w,
            move |t, p| {
                let xv = t.leaf(x.clone());
                let y = t.matmul(p, xv);
                let a = t.tanh(y);
                t.mae_loss(a, target.clone())
            },
            0.05,
        );
    }

    #[test]
    fn sigmoid_mul_gradients() {
        let mut rng = seeded_rng(5);
        let a = Tensor::rand_uniform(&mut rng, &[6], 0.9);
        let b = Tensor::rand_uniform(&mut rng, &[6], 0.9);
        let target = Tensor::zeros(&[6]);
        finite_diff_check(
            a,
            move |t, p| {
                let bv = t.leaf(b.clone());
                let s = t.sigmoid(bv);
                let m = t.mul(p, s);
                t.mae_loss(m, target.clone())
            },
            0.05,
        );
    }

    #[test]
    fn conv1d_weight_gradient() {
        let mut rng = seeded_rng(7);
        let w = Tensor::rand_uniform(&mut rng, &[2, 2, 2], 0.7);
        let x = Tensor::rand_uniform(&mut rng, &[2, 3, 5], 0.7);
        let target = Tensor::zeros(&[2, 3, 5]);
        finite_diff_check(
            w,
            move |t, p| {
                let xv = t.leaf(x.clone());
                let y = t.conv1d(xv, p, 2);
                t.mae_loss(y, target.clone())
            },
            0.05,
        );
    }

    #[test]
    fn conv1d_input_gradient() {
        let mut rng = seeded_rng(9);
        let w = Tensor::rand_uniform(&mut rng, &[2, 2, 2], 0.7);
        let x = Tensor::rand_uniform(&mut rng, &[2, 2, 4], 0.7);
        let target = Tensor::zeros(&[2, 2, 4]);
        finite_diff_check(
            x,
            move |t, p| {
                let wv = t.leaf(w.clone());
                let y = t.conv1d(p, wv, 1);
                t.mae_loss(y, target.clone())
            },
            0.05,
        );
    }

    #[test]
    fn gcn_mix_gradients() {
        let mut rng = seeded_rng(11);
        let n = 3;
        // Adjacency powers: identity + a random normalized matrix.
        let ident = {
            let mut t = Tensor::zeros(&[n, n]);
            for i in 0..n {
                t.data_mut()[i * n + i] = 1.0;
            }
            t
        };
        let a1 = Tensor::rand_uniform(&mut rng, &[n, n], 0.5).map(f32::abs);
        let adj = Rc::new(vec![ident, a1]);
        let w = Tensor::rand_uniform(&mut rng, &[2 * 2, 2], 0.6);
        let x = Tensor::rand_uniform(&mut rng, &[2, n, 3], 0.6);
        let target = Tensor::zeros(&[2, n, 3]);
        // Weight gradient.
        {
            let adj = adj.clone();
            let x = x.clone();
            let target = target.clone();
            finite_diff_check(
                w.clone(),
                move |t, p| {
                    let xv = t.leaf(x.clone());
                    let y = t.gcn_mix(xv, p, adj.clone());
                    t.mae_loss(y, target.clone())
                },
                0.05,
            );
        }
        // Input gradient.
        finite_diff_check(
            x,
            move |t, p| {
                let wv = t.leaf(w.clone());
                let y = t.gcn_mix(p, wv, adj.clone());
                t.mae_loss(y, target.clone())
            },
            0.05,
        );
    }

    #[test]
    fn bias_slice_and_mask_gradients() {
        let mut rng = seeded_rng(13);
        let b = Tensor::rand_uniform(&mut rng, &[2], 0.5);
        let x = Tensor::rand_uniform(&mut rng, &[2, 2, 3], 0.5);
        let mask = Tensor::new(&[2, 2], vec![0.0, 2.0, 2.0, 0.0]);
        let target = Tensor::zeros(&[2, 2]);
        finite_diff_check(
            b,
            move |t, p| {
                let xv = t.leaf(x.clone());
                let y = t.add_bias(xv, p);
                let s = t.slice_last_time(y);
                let m = t.mask_mul(s, mask.clone());
                t.mae_loss(m, target.clone())
            },
            0.05,
        );
    }

    #[test]
    fn relu_and_scale_gradients() {
        let x = Tensor::new(&[4], vec![-1.0, 0.5, 2.0, -0.3]);
        let target = Tensor::zeros(&[4]);
        finite_diff_check(
            x,
            move |t, p| {
                let r = t.relu(p);
                let s = t.scale(r, 3.0);
                t.mae_loss(s, target.clone())
            },
            0.05,
        );
    }

    #[test]
    fn add_accumulates_gradients_for_shared_input() {
        // y = x + x  =>  dy/dx = 2.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new(&[2], vec![1.0, 5.0]));
        let y = tape.add(x, x);
        let loss = tape.mae_loss(y, Tensor::zeros(&[2]));
        let g = tape.backward(loss);
        let gx = g.get(x).unwrap();
        // d|2x|/dx = 2*sign(x)/2 (mean) = 1 per element.
        assert!((gx.data()[0] - 1.0).abs() < 1e-6);
    }
}
