//! Minimal neural-network substrate for the DTGM forecaster.
//!
//! From scratch, within the approved dependency set: dense tensors
//! ([`tensor::Tensor`]), a reverse-mode autodiff tape ([`graph::Tape`])
//! with the exact operations Graph-WaveNet-style models need (causal
//! dilated temporal convolutions, graph-convolution mixing over nodes,
//! gating, dropout, MAE loss), and an Adam optimizer with step decay
//! ([`optim::Adam`]). Backward passes are verified against finite
//! differences in the test suite.

pub mod graph;
pub mod optim;
pub mod tensor;

pub use graph::{Gradients, Tape, Var};
pub use optim::Adam;
pub use tensor::Tensor;
