//! Adam optimizer with L2 penalty and step-decay learning rate —
//! matching the paper's DTGM training setup (Adam, initial lr 1e-3,
//! decay 0.1 every 20 epochs, L2 1e-5).

use crate::tensor::Tensor;

/// Adam state over a fixed set of parameters.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an optimizer for parameters with the given shapes.
    pub fn new(shapes: &[&[usize]], lr: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: shapes.iter().map(|s| Tensor::zeros(s)).collect(),
            v: shapes.iter().map(|s| Tensor::zeros(s)).collect(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Multiplies the learning rate by `factor` (step decay).
    pub fn decay_lr(&mut self, factor: f32) {
        self.lr *= factor;
    }

    /// Applies one update step. `params[i]` and `grads[i]` must match the
    /// construction shapes; a `None` gradient leaves the parameter
    /// untouched.
    pub fn step(&mut self, params: &mut [Tensor], grads: &[Option<&Tensor>]) {
        assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let Some(g) = grads[i] else { continue };
            assert_eq!(g.shape(), params[i].shape(), "grad shape mismatch at {i}");
            let p = params[i].data_mut();
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            for j in 0..p.len() {
                let grad = g.data()[j] + self.weight_decay * p[j];
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * grad;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * grad * grad;
                let mhat = m[j] / bc1;
                let vhat = v[j] / bc2;
                p[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Tape;
    use aets_common::rng::seeded_rng;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // Minimize |Wx - y| over W via the tape.
        let mut rng = seeded_rng(21);
        let x = Tensor::rand_uniform(&mut rng, &[3, 8], 1.0);
        let w_true = Tensor::rand_uniform(&mut rng, &[2, 3], 1.0);
        let y = w_true.matmul(&x);

        let mut w = Tensor::rand_uniform(&mut rng, &[2, 3], 0.5);
        let mut opt = Adam::new(&[&[2, 3]], 0.05, 0.0);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..300 {
            let mut tape = Tape::new();
            let wv = tape.leaf(w.clone());
            let xv = tape.leaf(x.clone());
            let pred = tape.matmul(wv, xv);
            let loss = tape.mae_loss(pred, y.clone());
            last_loss = tape.value(loss).item();
            first_loss.get_or_insert(last_loss);
            let grads = tape.backward(loss);
            let mut params = [std::mem::replace(&mut w, Tensor::zeros(&[2, 3]))];
            opt.step(&mut params, &[grads.get(wv)]);
            w = params.into_iter().next().unwrap();
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.05,
            "loss should drop 20x: {first_loss:?} -> {last_loss}"
        );
    }

    #[test]
    fn lr_decay() {
        let mut opt = Adam::new(&[&[1]], 1e-3, 0.0);
        opt.decay_lr(0.1);
        assert!((opt.lr() - 1e-4).abs() < 1e-10);
    }

    #[test]
    fn weight_decay_shrinks_unused_params() {
        let mut opt = Adam::new(&[&[2]], 0.1, 0.5);
        let mut p = [Tensor::new(&[2], vec![1.0, -1.0])];
        let zero_grad = Tensor::zeros(&[2]);
        for _ in 0..100 {
            opt.step(&mut p, &[Some(&zero_grad)]);
        }
        assert!(p[0].data()[0].abs() < 0.5, "decay should shrink weights");
    }
}
