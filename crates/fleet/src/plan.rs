//! Shard placement: which table group lives on which backup shard.
//!
//! The fleet partitions the epoch stream *by table group*, never by
//! table: a group's commit thread, commit-order queue, and `tg_cmt_ts`
//! watermark are indivisible, so a group must land on exactly one shard
//! for Algorithm 3 to stay meaningful. Every shard still carries the
//! *full* global [`TableGrouping`] — groups it does not own simply never
//! receive DML and are advanced purely by heartbeats — which keeps the
//! per-shard visibility boards congruent (same group ids, same
//! `global_cmt_ts` trajectory) and lets a replacement shard be
//! bootstrapped from any checkpoint without a grouping translation step.

use aets_common::{Error, GroupId, Result, TableId};
use aets_replay::TableGrouping;

/// A placement of table groups onto `num_shards` backup shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    grouping: TableGrouping,
    /// Group index -> owning shard.
    assign: Vec<usize>,
    num_shards: usize,
}

impl ShardPlan {
    /// Builds a plan from an explicit `group -> shard` assignment.
    ///
    /// Every group must be assigned a shard `< num_shards`, and every
    /// shard must own at least one group (an idle shard would pin the
    /// fleet watermark at its last heartbeat forever for no benefit).
    pub fn new(grouping: TableGrouping, assign: Vec<usize>, num_shards: usize) -> Result<Self> {
        if num_shards == 0 {
            return Err(Error::Config("fleet needs at least one shard".into()));
        }
        if assign.len() != grouping.num_groups() {
            return Err(Error::Config(format!(
                "{} groups but {} shard assignments",
                grouping.num_groups(),
                assign.len()
            )));
        }
        let mut owned = vec![false; num_shards];
        for (g, &s) in assign.iter().enumerate() {
            let slot = owned.get_mut(s).ok_or_else(|| {
                Error::Config(format!(
                    "group {g} assigned to shard {s}, but the fleet has {num_shards}"
                ))
            })?;
            *slot = true;
        }
        if let Some(idle) = owned.iter().position(|o| !o) {
            return Err(Error::Config(format!("shard {idle} owns no group")));
        }
        Ok(Self { grouping, assign, num_shards })
    }

    /// Greedy balanced placement: groups sorted by access rate
    /// (descending) are assigned to the least-loaded shard — the classic
    /// LPT heuristic, so the hottest groups spread across shards first.
    pub fn balanced(grouping: TableGrouping, num_shards: usize) -> Result<Self> {
        if num_shards == 0 {
            return Err(Error::Config("fleet needs at least one shard".into()));
        }
        if grouping.num_groups() < num_shards {
            return Err(Error::Config(format!(
                "{} groups cannot cover {num_shards} shards",
                grouping.num_groups()
            )));
        }
        let mut order: Vec<usize> = (0..grouping.num_groups()).collect();
        order.sort_by(|&a, &b| {
            let (ra, rb) =
                (grouping.rate(GroupId::new(a as u32)), grouping.rate(GroupId::new(b as u32)));
            rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        let mut load = vec![0.0f64; num_shards];
        let mut count = vec![0usize; num_shards];
        let mut assign = vec![0usize; grouping.num_groups()];
        for g in order {
            // Least-loaded shard; break rate ties by group count, then id,
            // so placement is fully deterministic.
            let s = (0..num_shards)
                .min_by(|&a, &b| {
                    load[a]
                        .partial_cmp(&load[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(count[a].cmp(&count[b]))
                        .then(a.cmp(&b))
                })
                .unwrap_or(0);
            assign[g] = s;
            load[s] += grouping.rate(GroupId::new(g as u32));
            count[s] += 1;
        }
        Self::new(grouping, assign, num_shards)
    }

    /// Number of shards in the fleet.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The fleet-wide grouping every shard runs.
    pub fn grouping(&self) -> &TableGrouping {
        &self.grouping
    }

    /// Total tables across all groups (every table appears exactly once).
    pub fn num_tables(&self) -> usize {
        (0..self.grouping.num_groups())
            .map(|g| self.grouping.members(GroupId::new(g as u32)).len())
            .sum()
    }

    /// Owning shard of `group`.
    pub fn shard_of_group(&self, group: GroupId) -> usize {
        self.assign[group.index()]
    }

    /// Owning shard of `table`.
    pub fn shard_of_table(&self, table: TableId) -> usize {
        self.shard_of_group(self.grouping.group_of(table))
    }

    /// Shards a query footprint touches (sorted, deduplicated).
    pub fn shards_for(&self, tables: &[TableId]) -> Vec<usize> {
        let mut out: Vec<usize> = tables.iter().map(|t| self.shard_of_table(*t)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Groups owned by `shard` (ascending).
    pub fn groups_on(&self, shard: usize) -> Vec<GroupId> {
        self.assign
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == shard)
            .map(|(g, _)| GroupId::new(g as u32))
            .collect()
    }

    /// Tables owned by `shard` (ascending).
    pub fn tables_on(&self, shard: usize) -> Vec<TableId> {
        let mut out: Vec<TableId> = self
            .groups_on(shard)
            .into_iter()
            .flat_map(|g| self.grouping.members(g).iter().copied())
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::FxHashSet;

    fn grouping() -> TableGrouping {
        // 4 groups over 6 tables with distinct rates.
        TableGrouping::new(
            6,
            vec![
                vec![TableId::new(0), TableId::new(1)],
                vec![TableId::new(2)],
                vec![TableId::new(3), TableId::new(4)],
                vec![TableId::new(5)],
            ],
            vec![100.0, 50.0, 10.0, 1.0],
            &[TableId::new(0)].into_iter().collect::<FxHashSet<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn explicit_plan_routes_groups_and_tables() {
        let p = ShardPlan::new(grouping(), vec![0, 1, 0, 1], 2).unwrap();
        assert_eq!(p.num_shards(), 2);
        assert_eq!(p.num_tables(), 6);
        assert_eq!(p.shard_of_group(GroupId::new(2)), 0);
        assert_eq!(p.shard_of_table(TableId::new(2)), 1);
        assert_eq!(p.groups_on(1), vec![GroupId::new(1), GroupId::new(3)]);
        assert_eq!(p.tables_on(1), vec![TableId::new(2), TableId::new(5)]);
        assert_eq!(p.shards_for(&[TableId::new(5), TableId::new(3), TableId::new(2)]), vec![0, 1]);
    }

    #[test]
    fn rejects_idle_and_out_of_range_shards() {
        assert!(ShardPlan::new(grouping(), vec![0, 0, 0, 0], 2).is_err(), "shard 1 idle");
        assert!(ShardPlan::new(grouping(), vec![0, 1, 2, 1], 2).is_err(), "shard 2 out of range");
        assert!(ShardPlan::new(grouping(), vec![0, 1], 2).is_err(), "length mismatch");
        assert!(ShardPlan::new(grouping(), vec![], 0).is_err(), "zero shards");
    }

    #[test]
    fn balanced_spreads_hot_groups_first() {
        let p = ShardPlan::balanced(grouping(), 2).unwrap();
        // Hottest two groups (rates 100, 50) must land on different shards.
        assert_ne!(p.shard_of_group(GroupId::new(0)), p.shard_of_group(GroupId::new(1)));
        // Deterministic: same inputs, same plan.
        let q = ShardPlan::balanced(grouping(), 2).unwrap();
        assert_eq!(
            (0..4).map(|g| p.shard_of_group(GroupId::new(g))).collect::<Vec<_>>(),
            (0..4).map(|g| q.shard_of_group(GroupId::new(g))).collect::<Vec<_>>()
        );
    }

    #[test]
    fn balanced_rejects_more_shards_than_groups() {
        assert!(ShardPlan::balanced(grouping(), 5).is_err());
    }
}
