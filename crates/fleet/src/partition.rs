//! Epoch-stream partitioning: one primary stream fans out into one
//! sub-stream per shard.
//!
//! Every transaction is retained on **every** shard — a shard that owns
//! none of a transaction's tables receives it with an empty entry list,
//! i.e. as a heartbeat. That is deliberate, not waste:
//!
//! * the dispatcher places heartbeat mini-txns in every group, so the
//!   `tg_cmt_ts` of groups a shard does not own (and of owned groups the
//!   transaction skipped) still advance every epoch;
//! * each sub-epoch keeps the original epoch id and the original
//!   `max_commit_ts` (the last transaction's commit timestamp survives
//!   filtering because the transaction itself survives), so all shards
//!   publish the *same* `global_cmt_ts` after replaying the same epoch —
//!   the property the fleet-wide watermark aggregation relies on.
//!
//! Heartbeats cost a dozen bytes of WAL each; congruent watermarks are
//! what they buy.

use aets_common::Result;
use aets_wal::{encode_epoch, EncodedEpoch, Epoch, TxnLog};

use crate::plan::ShardPlan;

/// Splits `epoch` into one sub-epoch per shard (same epoch id, entries
/// filtered to the shard's tables, every transaction retained).
pub fn partition_epoch(epoch: &Epoch, plan: &ShardPlan) -> Vec<Epoch> {
    let n = plan.num_shards();
    let mut out: Vec<Epoch> = (0..n)
        .map(|_| Epoch { id: epoch.id, txns: Vec::with_capacity(epoch.txns.len()) })
        .collect();
    for txn in &epoch.txns {
        let mut per_shard: Vec<Vec<aets_wal::DmlEntry>> = vec![Vec::new(); n];
        for entry in &txn.entries {
            per_shard[plan.shard_of_table(entry.table)].push(entry.clone());
        }
        for (shard, entries) in per_shard.into_iter().enumerate() {
            out[shard].txns.push(TxnLog { txn_id: txn.txn_id, commit_ts: txn.commit_ts, entries });
        }
    }
    out
}

/// Partitions and encodes a whole stream: `result[shard]` is the encoded
/// sub-stream that shard ingests, epoch ids preserved.
pub fn partition_stream(epochs: &[Epoch], plan: &ShardPlan) -> Result<Vec<Vec<EncodedEpoch>>> {
    let mut out: Vec<Vec<EncodedEpoch>> =
        (0..plan.num_shards()).map(|_| Vec::with_capacity(epochs.len())).collect();
    for epoch in epochs {
        for (shard, sub) in partition_epoch(epoch, plan).iter().enumerate() {
            out[shard].push(encode_epoch(sub));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::{FxHashSet, RowKey, TableId, Timestamp, TxnId};
    use aets_replay::TableGrouping;
    use aets_wal::DmlEntry;

    fn entry(table: u32, key: u64, ts: u64, txn: u64) -> DmlEntry {
        use aets_common::{DmlOp, Lsn, Value};
        DmlEntry {
            lsn: Lsn::new(key),
            txn_id: TxnId::new(txn),
            ts: Timestamp::from_micros(ts),
            table: TableId::new(table),
            op: DmlOp::Insert,
            key: RowKey::new(key),
            row_version: 1,
            cols: vec![(aets_common::ColumnId::new(0), Value::Int(ts as i64))],
            before: None,
        }
    }

    fn plan() -> ShardPlan {
        let g = TableGrouping::new(
            4,
            vec![
                vec![TableId::new(0), TableId::new(1)],
                vec![TableId::new(2)],
                vec![TableId::new(3)],
            ],
            vec![10.0, 5.0, 1.0],
            &FxHashSet::default(),
        )
        .unwrap();
        // Groups 0,2 -> shard 0; group 1 -> shard 1.
        ShardPlan::new(g, vec![0, 1, 0], 2).unwrap()
    }

    #[test]
    fn entries_split_by_owner_and_every_txn_survives() {
        let epoch = Epoch {
            id: aets_common::EpochId::new(7),
            txns: vec![
                TxnLog {
                    txn_id: TxnId::new(1),
                    commit_ts: Timestamp::from_micros(100),
                    entries: vec![entry(0, 1, 100, 1), entry(2, 2, 100, 1)],
                },
                // Touches only shard 1's table: shard 0 sees a heartbeat.
                TxnLog {
                    txn_id: TxnId::new(2),
                    commit_ts: Timestamp::from_micros(200),
                    entries: vec![entry(2, 3, 200, 2)],
                },
            ],
        };
        let parts = partition_epoch(&epoch, &plan());
        assert_eq!(parts.len(), 2);
        for p in &parts {
            assert_eq!(p.id, epoch.id);
            assert_eq!(p.txns.len(), 2, "every txn must reach every shard");
            assert_eq!(p.max_commit_ts(), epoch.max_commit_ts(), "watermarks stay congruent");
        }
        assert_eq!(parts[0].txns[0].entries.len(), 1);
        assert_eq!(parts[1].txns[0].entries.len(), 1);
        assert!(parts[0].txns[1].is_heartbeat(), "non-owned txn degrades to heartbeat");
        assert_eq!(parts[1].txns[1].entries.len(), 1);
    }

    #[test]
    fn encoded_substreams_verify_and_keep_ids() {
        let epochs: Vec<Epoch> = (0..3)
            .map(|i| Epoch {
                id: aets_common::EpochId::new(i),
                txns: vec![TxnLog {
                    txn_id: TxnId::new(i),
                    commit_ts: Timestamp::from_micros(10 * (i + 1)),
                    entries: vec![entry((i % 4) as u32, i, 10 * (i + 1), i)],
                }],
            })
            .collect();
        let streams = partition_stream(&epochs, &plan()).unwrap();
        assert_eq!(streams.len(), 2);
        for stream in &streams {
            assert_eq!(stream.len(), 3);
            for (i, enc) in stream.iter().enumerate() {
                assert!(enc.verify().is_ok());
                assert_eq!(enc.id.raw(), i as u64);
            }
        }
    }
}
