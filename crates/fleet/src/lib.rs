//! Replicated backup fleet for the AETS log-replay pipeline.
//!
//! A single [`aets_replay::BackupNode`] replays the whole epoch stream.
//! This crate scales that out and makes it survive process death: `N`
//! supervised shards each own a subset of the table groups, a stateless
//! router fans queries out by their table footprint and merges results,
//! and a coordinator heartbeat maintains the fleet-wide `global_cmt_ts`
//! that keeps Algorithm 3 pinned reads correct across shards.
//!
//! ```text
//!   primary epochs ──► partition by table group ──► shard 0 (groups A,C)
//!                       (every txn everywhere,  ──► shard 1 (groups B)
//!                        unowned ones as           ...
//!                        heartbeats)            ──► shard N-1
//!                                                      │ heartbeat: wm
//!   supervisor tick: faults → ingest → heartbeats → failover → min(wm)
//!                                                      │
//!   router: (qts, tables) ──► owning shards ──► merge, Algorithm 3 safe
//! ```
//!
//! Robustness model, in one paragraph: a shard that misses
//! [`FleetOptions::failover_after`] consecutive heartbeats is replaced
//! by re-opening its surviving WAL + checkpoint directories — newest
//! shipped checkpoint first, then only the WAL suffix through the
//! normal two-stage replay — after which it re-joins routing with every
//! registered [`FleetSession`] re-pinned on its fresh GC floor. While a
//! shard is dark the fleet watermark freezes, so reads stay
//! *consistent-but-stale*; [`DegradedPolicy`] decides whether a query
//! touching an unroutable shard fails loudly or returns an explicitly
//! partial answer. Silent staleness is structurally impossible.
//!
//! Chaos is first-class: [`FleetFaultPlan`] draws shard crashes, hangs,
//! lost heartbeats, and delayed watermark reports from a seed, so every
//! failover in a test run is reproducible from one integer.

// The fleet is the supervision layer; a panic here would be the outage
// it exists to prevent.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod faults;
pub mod fleet;
pub mod partition;
pub mod plan;
pub mod shard;

pub use faults::{FleetFaultKind, FleetFaultPlan};
pub use fleet::{
    DegradedPolicy, Fleet, FleetAnswer, FleetMetrics, FleetOptions, FleetSession, RoutedPart,
};
pub use partition::{partition_epoch, partition_stream};
pub use plan::ShardPlan;
pub use shard::{Shard, ShardConfig, ShardHealth};
