//! One supervised backup shard: a [`DurableBackup`] plus its serving
//! [`BackupNode`], the pending sub-stream it has not yet acked, and the
//! liveness state the fleet supervisor tracks.
//!
//! A *crash* drops the in-memory objects only — the WAL and checkpoint
//! directories survive, exactly like a process death on a real node.
//! Failover re-runs [`DurableBackup::open`] on the same directories:
//! newest shipped checkpoint first, then the WAL suffix through the
//! normal two-stage replay path. Epochs stay queued in `pending` until
//! their ingest returns `Ok`, so anything un-acked at death is simply
//! redelivered to the replacement (ingest is idempotent at the epoch
//! boundary: the WAL append is the ack, and the default
//! `FsyncPolicy::EveryEpoch` makes acked epochs durable).

use std::collections::VecDeque;
use std::path::{Path, PathBuf};

use aets_common::{Result, Timestamp};
use aets_replay::{
    AetsConfig, AetsEngine, BackupNode, DurableBackup, DurableOptions, NodeOptions, RecoveryReport,
    TableGrouping,
};
use aets_wal::EncodedEpoch;

/// Per-shard tunables.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Durability options for the shard's [`DurableBackup`].
    pub durable: DurableOptions,
    /// Query-service options for the shard's [`BackupNode`].
    pub node: NodeOptions,
    /// Replay threads per shard engine.
    pub threads: usize,
    /// Epochs ingested per supervisor tick (the ingest "cycle budget").
    pub ingest_batch: usize,
    /// Pending epochs beyond which the shard reports [`ShardHealth::Lagging`].
    pub lag_threshold: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            durable: DurableOptions::default(),
            node: NodeOptions { query_workers: 2, ..Default::default() },
            threads: 2,
            ingest_batch: 4,
            lag_threshold: 16,
        }
    }
}

/// Supervisor-visible health of a shard, ordered worst-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Process dead; directories awaiting failover.
    Down,
    /// Alive but wedged: not ingesting, not heartbeating.
    Hung,
    /// Serving, but its pending backlog exceeds the lag threshold.
    Lagging,
    /// Serving and keeping up.
    Healthy,
}

impl ShardHealth {
    /// Gauge encoding: 0 = down, 1 = hung, 2 = lagging, 3 = healthy.
    pub fn level(self) -> u64 {
        match self {
            ShardHealth::Down => 0,
            ShardHealth::Hung => 1,
            ShardHealth::Lagging => 2,
            ShardHealth::Healthy => 3,
        }
    }

    /// Whether the router may send queries here.
    pub fn routable(self) -> bool {
        matches!(self, ShardHealth::Healthy | ShardHealth::Lagging)
    }
}

/// One supervised backup shard.
pub struct Shard {
    id: usize,
    wal_dir: PathBuf,
    ckpt_dir: PathBuf,
    grouping: TableGrouping,
    num_tables: usize,
    cfg: ShardConfig,
    /// `None` while crashed (between death and failover).
    backup: Option<DurableBackup>,
    node: Option<BackupNode>,
    /// Sub-stream epochs delivered but not yet acked by `ingest`.
    pending: VecDeque<EncodedEpoch>,
    /// Tick until which the shard is wedged (exclusive).
    pub(crate) hung_until: Option<u64>,
    /// Watermark from the last heartbeat that arrived (monotone).
    pub(crate) reported: Timestamp,
    /// Consecutive missed heartbeats.
    pub(crate) missed: u32,
}

impl Shard {
    /// Boots a shard under `root` (WAL in `root/wal`, checkpoints in
    /// `root/ckpt` — both created on demand, both reused on failover).
    pub fn open(
        id: usize,
        root: &Path,
        grouping: TableGrouping,
        num_tables: usize,
        cfg: ShardConfig,
    ) -> Result<Self> {
        let mut shard = Self {
            id,
            wal_dir: root.join("wal"),
            ckpt_dir: root.join("ckpt"),
            grouping,
            num_tables,
            cfg,
            backup: None,
            node: None,
            pending: VecDeque::new(),
            hung_until: None,
            reported: Timestamp::ZERO,
            missed: 0,
        };
        shard.boot()?;
        Ok(shard)
    }

    /// (Re)opens the durable backup on the shard's directories and starts
    /// serving. Used both at fleet start and for failover bootstrap.
    pub fn boot(&mut self) -> Result<()> {
        let engine = AetsEngine::builder(self.grouping.clone())
            .config(AetsConfig { threads: self.cfg.threads, ..Default::default() })
            .build()?;
        let backup = DurableBackup::open(
            &self.wal_dir,
            &self.ckpt_dir,
            engine,
            self.num_tables,
            self.cfg.durable.clone(),
            None,
        )?;
        let node = backup.serve(self.cfg.node.clone())?;
        self.backup = Some(backup);
        self.node = Some(node);
        self.hung_until = None;
        Ok(())
    }

    /// Simulated process death: in-memory state dropped, disk retained.
    pub fn kill(&mut self) {
        // Node first: its worker threads hold Arcs into the backup's db.
        self.node = None;
        self.backup = None;
        self.hung_until = None;
    }

    /// Shard id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the process is alive (possibly hung).
    pub fn is_up(&self) -> bool {
        self.backup.is_some()
    }

    /// Whether the shard is wedged at `tick`.
    pub fn is_hung(&self, tick: u64) -> bool {
        self.hung_until.is_some_and(|until| tick < until)
    }

    /// The serving node, if the shard is up and not wedged at `tick`.
    pub fn serving(&self, tick: u64) -> Option<&BackupNode> {
        if self.is_hung(tick) {
            return None;
        }
        self.node.as_ref()
    }

    /// The durable backup, regardless of hang state.
    pub fn backup(&self) -> Option<&DurableBackup> {
        self.backup.as_ref()
    }

    /// Health at `tick`.
    pub fn health(&self, tick: u64) -> ShardHealth {
        if !self.is_up() {
            ShardHealth::Down
        } else if self.is_hung(tick) {
            ShardHealth::Hung
        } else if self.pending.len() > self.cfg.lag_threshold {
            ShardHealth::Lagging
        } else {
            ShardHealth::Healthy
        }
    }

    /// Queues one sub-epoch for ingest.
    pub fn enqueue(&mut self, epoch: EncodedEpoch) {
        self.pending.push_back(epoch);
    }

    /// Delivered-but-unacked backlog.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// Ingests up to the configured batch of pending epochs; an epoch is
    /// popped only after its ingest acked. Returns epochs acked. Skips
    /// silently when down or wedged (the supervisor decides what to do
    /// about that).
    pub fn ingest_some(&mut self, tick: u64) -> Result<usize> {
        if self.is_hung(tick) {
            return Ok(0);
        }
        let Some(backup) = self.backup.as_mut() else {
            return Ok(0);
        };
        let mut acked = 0;
        while acked < self.cfg.ingest_batch {
            let Some(front) = self.pending.front() else { break };
            backup.ingest(front)?;
            self.pending.pop_front();
            acked += 1;
        }
        Ok(acked)
    }

    /// The shard's own replayed watermark (what a heartbeat would report
    /// right now), or the last reported one if the process is dead.
    pub fn local_watermark(&self) -> Timestamp {
        self.backup.as_ref().map_or(self.reported, |b| b.board().global_cmt_ts())
    }

    /// Watermark of the last heartbeat the coordinator accepted.
    pub fn reported_watermark(&self) -> Timestamp {
        self.reported
    }

    /// Recovery report of the current incarnation.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.backup.as_ref().map(|b| b.recovery())
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("id", &self.id)
            .field("up", &self.is_up())
            .field("backlog", &self.pending.len())
            .field("reported", &self.reported)
            .field("missed", &self.missed)
            .finish()
    }
}
