//! The fleet coordinator: supervision loop, heartbeat aggregation,
//! failover, and the health-checked query router.
//!
//! # Correctness model
//!
//! Each shard replays its sub-stream independently, but because every
//! transaction reaches every shard (see [`crate::partition`]) all shards
//! publish the *same* `global_cmt_ts` after the same epoch. The fleet
//! watermark is the **min over the shards' last heartbeat-reported
//! watermarks** — the freshest timestamp every shard is provably at or
//! past. A dead or silent shard freezes its report, which freezes the
//! fleet watermark: reads stay *consistent-but-stale*, never
//! stale-passed-off-as-fresh. Queries at `qts <= global_cmt_ts()` are
//! therefore Algorithm-3 admissible on every routable shard with no
//! wait, and a routed read can never observe data past the fleet
//! watermark on one shard that another shard has not yet replayed.
//!
//! # Supervision
//!
//! [`Fleet::tick`] is one deterministic supervisor interval: inject
//! scheduled faults, let live shards ingest, collect heartbeats, count
//! misses, and fail over any shard that missed
//! [`FleetOptions::failover_after`] consecutive heartbeats. Failover is
//! checkpoint-shipping bootstrap: the replacement re-opens the shard's
//! surviving directories — newest checkpoint first, then only the WAL
//! suffix through normal two-stage replay — re-pins every registered
//! [`FleetSession`] on the fresh query floor, and rejoins routing.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aets_common::{Error, Result, Timestamp};
use aets_memtable::{FloorTicket, QueryFloor};
use aets_replay::{
    ingest_epoch, IngestStats, QueryHandle, QueryOutput, QuerySpec, QueryTarget, ReadSession,
    RetryPolicy, ServiceOptions,
};
use aets_telemetry::trace::stages;
use aets_telemetry::{
    names, shard_label, Counter, EventKind, FlightRecorder, FlightRecorderConfig, Gauge, HealthFn,
    HealthReport, Histogram, ObsServer, Telemetry,
};
use aets_wal::{assemble_txns, Epoch, EpochSource};
use parking_lot::Mutex;

use crate::faults::{FleetFaultKind, FleetFaultPlan};
use crate::partition::partition_epoch;
use crate::plan::ShardPlan;
use crate::shard::{Shard, ShardConfig, ShardHealth};

/// Fleet-level tunables.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Configuration stamped onto every shard.
    pub shard: ShardConfig,
    /// Consecutive missed heartbeats before the supervisor replaces a
    /// shard. The failover bound proven by the chaos suite: a dead shard
    /// is back in routing within this many ticks of its crash.
    pub failover_after: u32,
    /// Bounded retry/backoff for routed submissions rejected with
    /// [`Error::Overloaded`].
    #[deprecated(note = "set `service.retry` (ServiceOptions::builder().retry(..)) instead")]
    pub retry: RetryPolicy,
    /// Deadline stamped on routed queries that carry none of their own.
    pub query_timeout: Duration,
    /// Fleet telemetry (`fleet_*` metrics and shard lifecycle events).
    /// `None` runs disabled.
    #[deprecated(
        note = "set `service.telemetry` (ServiceOptions::builder().telemetry(..)) instead"
    )]
    pub telemetry: Option<Arc<Telemetry>>,
    /// Bind address of the fleet's live observability endpoint
    /// (`/metrics`, `/spans.json`, `/healthz`, …); `None` serves no HTTP.
    /// `/healthz` reports 503 naming the down or hung shards.
    #[deprecated(note = "set `service.obs_addr` (ServiceOptions::builder().obs_addr(..)) instead")]
    pub obs_addr: Option<String>,
    /// Directory for degraded-mode flight-recorder bundles: shard-down,
    /// failover, and quarantine events each dump a bounded JSON bundle
    /// of recent spans + events + the metrics snapshot there. `None`
    /// disables the recorder.
    #[deprecated(
        note = "set `service.flight_dir` (ServiceOptions::builder().flight_dir(..)) instead"
    )]
    pub flight_dir: Option<PathBuf>,
    /// Consolidated service-layer knobs shared with the query node and
    /// the durable backup: telemetry handle, observability endpoint,
    /// flight recorder, and retry policy.
    pub service: ServiceOptions,
}

impl Default for FleetOptions {
    fn default() -> Self {
        #[allow(deprecated)]
        Self {
            shard: ShardConfig::default(),
            failover_after: 3,
            retry: RetryPolicy::default(),
            query_timeout: Duration::from_secs(5),
            telemetry: None,
            obs_addr: None,
            flight_dir: None,
            service: ServiceOptions::default(),
        }
    }
}

impl FleetOptions {
    /// Effective fleet telemetry: the consolidated
    /// [`ServiceOptions::telemetry`] wins; the deprecated per-struct
    /// field is honoured when the new one is unset.
    pub fn effective_telemetry(&self) -> Option<Arc<Telemetry>> {
        #[allow(deprecated)]
        self.service.telemetry.clone().or_else(|| self.telemetry.clone())
    }

    /// Effective observability bind address, resolved the same way.
    pub fn effective_obs_addr(&self) -> Option<&str> {
        #[allow(deprecated)]
        self.service.obs_addr.as_deref().or(self.obs_addr.as_deref())
    }

    /// Effective flight-recorder directory, resolved the same way.
    pub fn effective_flight_dir(&self) -> Option<&std::path::Path> {
        #[allow(deprecated)]
        self.service.flight_dir.as_deref().or(self.flight_dir.as_deref())
    }

    /// Effective routed-submission retry policy, resolved the same way.
    pub fn effective_retry(&self) -> &RetryPolicy {
        #[allow(deprecated)]
        self.service.retry.as_ref().unwrap_or(&self.retry)
    }
}

/// What the router does when a spec's owning shard is not routable (or
/// refuses with [`Error::Degraded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedPolicy {
    /// Fail the whole fleet query with [`Error::Degraded`].
    Refuse,
    /// Answer what is answerable; unreachable specs come back as
    /// [`RoutedPart::Unavailable`] so the caller *knows* what is missing
    /// — a partial answer is explicit, never a silently stale one.
    Partial,
}

/// One spec's slot in a [`FleetAnswer`].
#[derive(Debug, Clone, PartialEq)]
pub enum RoutedPart {
    /// The spec's result from its owning shard.
    Output(QueryOutput),
    /// The owning shard could not answer under [`DegradedPolicy::Partial`].
    Unavailable {
        /// The shard that was down, hung, or degraded.
        shard: usize,
    },
}

/// A merged fleet query result, parts in the order of the submitted specs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAnswer {
    /// One part per spec, same order.
    pub parts: Vec<RoutedPart>,
    /// Snapshot timestamp the query ran at.
    pub qts: Timestamp,
    /// Shards that contributed [`RoutedPart::Unavailable`] parts (empty
    /// for a complete answer).
    pub degraded_shards: Vec<usize>,
}

impl FleetAnswer {
    /// Whether every part carries an output.
    pub fn is_complete(&self) -> bool {
        self.degraded_shards.is_empty()
    }

    /// The outputs, or `None` if any part is unavailable.
    pub fn outputs(&self) -> Option<Vec<&QueryOutput>> {
        self.parts
            .iter()
            .map(|p| match p {
                RoutedPart::Output(o) => Some(o),
                RoutedPart::Unavailable { .. } => None,
            })
            .collect()
    }
}

/// Aggregate supervision counters (plain numbers for tests; the same
/// figures land in telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetMetrics {
    /// Supervisor ticks run.
    pub ticks: u64,
    /// Failovers completed (bootstrap + rejoin).
    pub failovers: u64,
    /// Shard crashes injected by the fault plan.
    pub crashes_injected: u64,
    /// Shard hangs injected by the fault plan.
    pub hangs_injected: u64,
    /// Heartbeats the coordinator counted as missed.
    pub heartbeats_missed: u64,
    /// Epochs accepted into shard queues (per shard delivery counted once
    /// per source epoch).
    pub epochs_enqueued: u64,
    /// Sub-epochs acked by shard ingests.
    pub epochs_acked: u64,
}

/// Floor pins a fleet session holds, one slot per shard.
struct SessionPins {
    qts: Timestamp,
    pins: Vec<Option<(Arc<QueryFloor>, FloorTicket)>>,
}

/// Shared pin registry: failover re-pins every live session on the
/// replacement shard's fresh floor, so a pinned read stays GC-protected
/// across the very restart it is supposed to survive.
#[derive(Default)]
struct SessionRegistry {
    next: AtomicU64,
    inner: Mutex<HashMap<u64, SessionPins>>,
}

/// A fleet-wide pinned read session: holds a GC floor at `qts` on every
/// live shard until dropped. The pin follows failovers — a replacement
/// shard is re-pinned before it rejoins routing.
pub struct FleetSession {
    registry: Arc<SessionRegistry>,
    id: u64,
    qts: Timestamp,
}

impl FleetSession {
    /// The pinned snapshot timestamp.
    pub fn qts(&self) -> Timestamp {
        self.qts
    }
}

impl Drop for FleetSession {
    fn drop(&mut self) {
        if let Some(entry) = self.registry.inner.lock().remove(&self.id) {
            for pin in entry.pins.into_iter().flatten() {
                pin.0.release(pin.1);
            }
        }
    }
}

/// Telemetry handles for the `fleet_*` metric family.
struct FleetStats {
    shard_health: Vec<Gauge>,
    failovers: Counter,
    routed_latency: Histogram,
    global_ts: Gauge,
    heartbeats_missed: Counter,
    queries_routed: Counter,
    queries_partial: Counter,
}

impl FleetStats {
    fn new(telemetry: &Telemetry, num_shards: usize) -> Self {
        let reg = telemetry.registry();
        Self {
            shard_health: (0..num_shards)
                .map(|s| reg.gauge_with(names::FLEET_SHARD_HEALTH, shard_label(s)))
                .collect(),
            failovers: reg.counter(names::FLEET_FAILOVERS),
            routed_latency: reg.histogram(names::FLEET_ROUTED_LATENCY_US),
            global_ts: reg.gauge(names::FLEET_GLOBAL_CMT_TS_US),
            heartbeats_missed: reg.counter(names::FLEET_HEARTBEATS_MISSED),
            queries_routed: reg.counter(names::FLEET_QUERIES_ROUTED),
            queries_partial: reg.counter(names::FLEET_QUERIES_PARTIAL),
        }
    }
}

/// A replicated backup fleet behind a stateless router.
pub struct Fleet {
    plan: ShardPlan,
    shards: Vec<Shard>,
    opts: FleetOptions,
    faults: Option<FleetFaultPlan>,
    tick: u64,
    global_cmt_ts: Timestamp,
    registry: Arc<SessionRegistry>,
    telemetry: Arc<Telemetry>,
    stats: FleetStats,
    metrics: FleetMetrics,
    next_source_seq: u64,
    /// Last published per-shard health levels (see [`ShardHealth::level`]),
    /// shared with the `/healthz` handler's thread.
    health_levels: Arc<Vec<AtomicU64>>,
    obs: Option<ObsServer>,
}

impl Fleet {
    /// Boots `plan.num_shards()` shards under `root`
    /// (`root/shard-N/{wal,ckpt}`); existing directories are recovered,
    /// so a whole-fleet restart is just `open` again.
    pub fn open(plan: ShardPlan, root: impl Into<PathBuf>, opts: FleetOptions) -> Result<Self> {
        let root = root.into();
        let telemetry =
            opts.effective_telemetry().unwrap_or_else(|| Arc::new(Telemetry::disabled()));
        let num_tables = plan.num_tables();
        let mut shards = Vec::with_capacity(plan.num_shards());
        for s in 0..plan.num_shards() {
            shards.push(Shard::open(
                s,
                &root.join(format!("shard-{s}")),
                plan.grouping().clone(),
                num_tables,
                opts.shard.clone(),
            )?);
        }
        let stats = FleetStats::new(&telemetry, plan.num_shards());
        if let Some(dir) = opts.effective_flight_dir() {
            let recorder = FlightRecorder::create(FlightRecorderConfig::new(dir))
                .map_err(|e| Error::Io(format!("flight recorder at {}: {e}", dir.display())))?;
            telemetry.set_flight_recorder(Some(recorder));
        }
        let health_levels: Arc<Vec<AtomicU64>> = Arc::new(
            (0..plan.num_shards()).map(|_| AtomicU64::new(ShardHealth::Healthy.level())).collect(),
        );
        let obs = match opts.effective_obs_addr() {
            Some(addr) => {
                let levels = health_levels.clone();
                let health: HealthFn = Arc::new(move || {
                    let bad: Vec<usize> = levels
                        .iter()
                        .enumerate()
                        .filter(|(_, l)| l.load(Ordering::Relaxed) <= ShardHealth::Hung.level())
                        .map(|(s, _)| s)
                        .collect();
                    if bad.is_empty() {
                        HealthReport::ok()
                    } else {
                        HealthReport::degraded(bad, "shard(s) down or hung")
                    }
                });
                Some(
                    ObsServer::bind(addr, telemetry.clone(), health)
                        .map_err(|e| Error::Io(format!("bind obs endpoint {addr}: {e}")))?,
                )
            }
            None => None,
        };
        Ok(Self {
            plan,
            shards,
            opts,
            faults: None,
            tick: 0,
            global_cmt_ts: Timestamp::ZERO,
            registry: Arc::new(SessionRegistry::default()),
            telemetry,
            stats,
            metrics: FleetMetrics::default(),
            next_source_seq: 0,
            health_levels,
            obs,
        })
    }

    /// Installs a deterministic fault schedule (chaos harness).
    pub fn with_faults(mut self, plan: FleetFaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Partitions one primary epoch and queues the sub-epochs on their
    /// shards. Delivery to a dead shard is fine: the queue survives the
    /// crash and drains after failover.
    pub fn enqueue(&mut self, epoch: &Epoch) {
        self.metrics.epochs_enqueued += 1;
        for (s, sub) in partition_epoch(epoch, &self.plan).iter().enumerate() {
            self.shards[s].enqueue(aets_wal::encode_epoch(sub));
        }
    }

    /// Drains up to `max_epochs` epochs from a pull feed (e.g. a
    /// [network receiver](aets_wal::EpochSource)) through the resync loop
    /// and enqueues each on its shards. Epochs below the fleet's source
    /// cursor are skipped, so a resumed stream that re-ships its
    /// in-flight window is absorbed exactly once.
    ///
    /// A feed that merely ran dry (retries exhausted on stalls alone, no
    /// corruption and no gaps) is *idle*, not broken: the drain returns
    /// `Ok` with what it got and the cursor stays put for the next call.
    /// Checksum failures or epoch gaps that outlive the retry budget
    /// surface as errors.
    pub fn ingest_source(
        &mut self,
        source: &mut dyn EpochSource,
        retry: &RetryPolicy,
        max_epochs: usize,
    ) -> Result<usize> {
        let first = source.first_seq();
        let end = first + source.num_epochs() as u64;
        if self.next_source_seq < first {
            self.next_source_seq = first;
        }
        let mut drained = 0usize;
        let mut records = Vec::new();
        while drained < max_epochs && self.next_source_seq < end {
            let mut stats = IngestStats::default();
            let encoded = match ingest_epoch(source, self.next_source_seq, retry, &mut stats) {
                Ok(e) => e,
                // Stalls with clean delivery otherwise = the feed is idle.
                Err(_)
                    if stats.stalls > 0
                        && stats.checksum_failures == 0
                        && stats.epoch_gaps == 0 =>
                {
                    return Ok(drained)
                }
                Err(e) => return Err(e),
            };
            encoded.decode_records_into(&mut records)?;
            let epoch = Epoch { id: encoded.id, txns: assemble_txns(&records)? };
            self.enqueue(&epoch);
            self.next_source_seq += 1;
            drained += 1;
        }
        Ok(drained)
    }

    /// The next source sequence [`Fleet::ingest_source`] will request.
    pub fn next_source_seq(&self) -> u64 {
        self.next_source_seq
    }

    /// One supervisor interval. See the module docs for the phase order.
    pub fn tick(&mut self) -> Result<()> {
        self.tick += 1;
        let now = self.tick;
        self.metrics.ticks += 1;
        let n = self.shards.len();

        // Phase 1: scheduled faults.
        let mut hb_lost = vec![false; n];
        let mut delayed = vec![false; n];
        if let Some(fp) = self.faults.clone() {
            for s in 0..n {
                match fp.fault_at(s, now) {
                    Some(FleetFaultKind::ShardCrash) if self.shards[s].is_up() => {
                        self.shards[s].kill();
                        self.metrics.crashes_injected += 1;
                        self.telemetry.event(EventKind::ShardDown { shard: s });
                    }
                    Some(FleetFaultKind::ShardHang)
                        if self.shards[s].is_up() && !self.shards[s].is_hung(now) =>
                    {
                        self.shards[s].hung_until = Some(now + fp.hang_ticks(s, now));
                        self.metrics.hangs_injected += 1;
                    }
                    Some(FleetFaultKind::HeartbeatLoss) => hb_lost[s] = true,
                    Some(FleetFaultKind::DelayedWatermark) => delayed[s] = true,
                    _ => {}
                }
            }
        }

        // Phase 2: live shards ingest their backlog.
        for s in 0..n {
            match self.shards[s].ingest_some(now) {
                Ok(acked) => self.metrics.epochs_acked += acked as u64,
                // A mid-ingest death is a crash like any other: the epoch
                // stays queued and the failover path redelivers it.
                Err(e) if e.is_crash() => {
                    self.shards[s].kill();
                    self.telemetry.event(EventKind::ShardDown { shard: s });
                }
                Err(e) => return Err(e),
            }
        }

        // Phase 3: heartbeat collection. A delayed watermark re-reports
        // the previous value (stale, never ahead); a lost heartbeat or a
        // dead/hung shard counts a miss.
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let alive = shard.is_up() && !shard.is_hung(now);
            if alive && !hb_lost[s] {
                let wm = if delayed[s] { shard.reported } else { shard.local_watermark() };
                shard.reported = shard.reported.max(wm);
                shard.missed = 0;
            } else {
                shard.missed += 1;
                self.metrics.heartbeats_missed += 1;
                self.stats.heartbeats_missed.inc();
                self.telemetry
                    .event(EventKind::ShardHeartbeatMissed { shard: s, missed: shard.missed });
            }
        }

        // Phase 4: failover of shards past the miss threshold.
        for s in 0..n {
            if self.shards[s].missed >= self.opts.failover_after {
                self.failover(s)?;
            }
        }

        // Phase 5: fleet watermark (min over reported; monotone because
        // every component is) and health gauges.
        if let Some(wm) = self.shards.iter().map(|s| s.reported).min() {
            self.global_cmt_ts = self.global_cmt_ts.max(wm);
        }
        self.stats.global_ts.set(self.global_cmt_ts.as_micros());
        for (s, shard) in self.shards.iter().enumerate() {
            let level = shard.health(now).level();
            self.stats.shard_health[s].set(level);
            self.health_levels[s].store(level, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Replaces shard `s`: checkpoint-shipping bootstrap off its
    /// surviving directories, session re-pin, rejoin.
    fn failover(&mut self, s: usize) -> Result<()> {
        let intervals_down = u64::from(self.shards[s].missed);
        if self.shards[s].is_up() {
            // Wedged past the threshold: stop waiting, replace it.
            self.shards[s].kill();
            self.telemetry.event(EventKind::ShardDown { shard: s });
        }
        self.shards[s].boot()?;
        let suffix_epochs = self.shards[s].recovery().map_or(0, |r| r.suffix_epochs);

        // Re-pin every registered session on the replacement's fresh
        // floor before it can serve (and GC) anything.
        if let Some(backup) = self.shards[s].backup() {
            let floor = backup.floor().clone();
            let mut sessions = self.registry.inner.lock();
            for entry in sessions.values_mut() {
                if let Some((old_floor, ticket)) = entry.pins[s].take() {
                    old_floor.release(ticket);
                }
                let ticket = floor.pin(entry.qts);
                entry.pins[s] = Some((floor.clone(), ticket));
            }
        }

        let shard = &mut self.shards[s];
        shard.missed = 0;
        shard.reported = shard.reported.max(shard.local_watermark());
        self.metrics.failovers += 1;
        self.stats.failovers.inc();
        self.telemetry.event(EventKind::ShardFailover { shard: s, intervals_down, suffix_epochs });
        Ok(())
    }

    /// Manually kills a shard (tests and demos; scheduled faults use
    /// [`Fleet::with_faults`]).
    pub fn kill_shard(&mut self, s: usize) {
        if self.shards[s].is_up() {
            self.shards[s].kill();
            self.telemetry.event(EventKind::ShardDown { shard: s });
        }
    }

    /// Ticks until the fleet watermark reaches `target` or `max_ticks`
    /// elapse; returns the ticks spent or an error if the budget runs
    /// out (a liveness failure under the installed fault schedule).
    pub fn run_until_fresh(&mut self, target: Timestamp, max_ticks: u64) -> Result<u64> {
        let start = self.tick;
        while self.global_cmt_ts < target {
            if self.tick - start >= max_ticks {
                return Err(Error::Replay(format!(
                    "fleet watermark stuck at {:?} after {max_ticks} ticks (target {target:?})",
                    self.global_cmt_ts
                )));
            }
            self.tick()?;
        }
        Ok(self.tick - start)
    }

    /// Routes `specs` by owning shard, fans them out, and merges results
    /// in spec order. `qts` at or below [`Fleet::global_cmt_ts`] admits
    /// without waiting; a fresher `qts` waits on shard watermarks, which
    /// only advance on [`Fleet::tick`] — so single-threaded drivers
    /// should query at the fleet watermark.
    pub fn query(
        &self,
        qts: Timestamp,
        specs: &[QuerySpec],
        policy: DegradedPolicy,
    ) -> Result<FleetAnswer> {
        let t0 = Instant::now();
        // One routing span per fleet query, covering the fan-out and the
        // merge; it attaches to the latest epoch the fleet ring knows of
        // (shard engines trace into their own rings).
        let ring = self.telemetry.spans();
        let route_span =
            ring.begin(ring.epoch_hint().unwrap_or(0), stages::FLEET_ROUTE, None, None);
        let n = self.shards.len();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, spec) in specs.iter().enumerate() {
            by_shard[self.plan.shard_of_table(spec.table)].push(i);
        }

        let mut parts: Vec<Option<RoutedPart>> = (0..specs.len()).map(|_| None).collect();
        let mut degraded: Vec<usize> = Vec::new();
        // Sessions stay open until every handle resolved: the pins keep
        // per-shard GC below qts for the whole merged read.
        let mut sessions: Vec<ReadSession<'_>> = Vec::new();
        let mut handles: Vec<(usize, usize, QueryHandle)> = Vec::new();

        for (s, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let Some(node) = self.shards[s].serving(self.tick) else {
                match policy {
                    DegradedPolicy::Refuse => return Err(Error::Degraded),
                    DegradedPolicy::Partial => {
                        for &i in idxs {
                            parts[i] = Some(RoutedPart::Unavailable { shard: s });
                        }
                        degraded.push(s);
                        self.stats.queries_partial.inc();
                        continue;
                    }
                }
            };
            let tables: Vec<_> = idxs.iter().map(|&i| specs[i].table).collect();
            let session = node.open_session(qts, &tables);
            for &i in idxs {
                let mut spec = specs[i].clone();
                if spec.timeout.is_none() {
                    spec.timeout = Some(self.opts.query_timeout);
                }
                let handle = self.submit_with_retry(&session, spec)?;
                self.stats.queries_routed.inc();
                handles.push((i, s, handle));
            }
            sessions.push(session);
        }

        for (i, s, handle) in handles {
            match handle.wait() {
                Ok(out) => parts[i] = Some(RoutedPart::Output(out)),
                Err(Error::Degraded) => match policy {
                    DegradedPolicy::Refuse => return Err(Error::Degraded),
                    DegradedPolicy::Partial => {
                        parts[i] = Some(RoutedPart::Unavailable { shard: s });
                        if !degraded.contains(&s) {
                            degraded.push(s);
                        }
                        self.stats.queries_partial.inc();
                    }
                },
                Err(e) => return Err(e),
            }
        }
        drop(sessions);

        self.stats.routed_latency.record(t0.elapsed());
        // Errors above drop the open span: only completed routes land in
        // the ring.
        if let Some(s) = route_span {
            s.finish(ring);
        }
        let parts =
            parts.into_iter().map(|p| p.expect("every spec slot filled by routing")).collect();
        Ok(FleetAnswer { parts, qts, degraded_shards: degraded })
    }

    fn submit_with_retry(&self, session: &ReadSession<'_>, spec: QuerySpec) -> Result<QueryHandle> {
        let mut attempt = 0u32;
        loop {
            match session.submit(spec.clone()) {
                Ok(h) => return Ok(h),
                Err(Error::Overloaded) if attempt < self.opts.effective_retry().max_retries => {
                    attempt += 1;
                    std::thread::sleep(self.opts.effective_retry().backoff(attempt));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Pins `qts` on every live shard's GC floor until the session drops;
    /// the pin follows failovers onto replacement shards.
    pub fn open_session(&self, qts: Timestamp) -> FleetSession {
        let pins = self
            .shards
            .iter()
            .map(|shard| {
                shard.backup().map(|b| {
                    let floor = b.floor().clone();
                    let ticket = floor.pin(qts);
                    (floor, ticket)
                })
            })
            .collect();
        let id = self.registry.next.fetch_add(1, Ordering::Relaxed);
        self.registry.inner.lock().insert(id, SessionPins { qts, pins });
        FleetSession { registry: self.registry.clone(), id, qts }
    }

    /// The fleet-wide safe read timestamp: the min over the shards' last
    /// heartbeat-reported watermarks. Monotone; starts at zero until
    /// every shard has reported once.
    pub fn global_cmt_ts(&self) -> Timestamp {
        self.global_cmt_ts
    }

    /// Health of every shard at the current tick.
    pub fn health(&self) -> Vec<ShardHealth> {
        self.shards.iter().map(|s| s.health(self.tick)).collect()
    }

    /// Supervisor counters.
    pub fn metrics(&self) -> FleetMetrics {
        self.metrics
    }

    /// Shard accessor (tests and demos).
    pub fn shard(&self, s: usize) -> &Shard {
        &self.shards[s]
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The placement the router uses.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Fleet telemetry.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Bound address of the live observability endpoint, when
    /// [`FleetOptions::obs_addr`] asked for one.
    pub fn obs_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs.as_ref().map(ObsServer::addr)
    }

    /// Supervisor ticks elapsed.
    pub fn now(&self) -> u64 {
        self.tick
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("shards", &self.shards)
            .field("tick", &self.tick)
            .field("global_cmt_ts", &self.global_cmt_ts)
            .field("metrics", &self.metrics)
            .finish()
    }
}

/// The fleet behind the same generic surface as a single node: routed
/// fan-out with the strict [`DegradedPolicy::Refuse`] policy, so a dark
/// shard surfaces as [`Error::Degraded`] instead of a partial answer.
/// Callers that want partial answers use [`Fleet::query`] directly.
impl QueryTarget for Fleet {
    fn safe_ts(&self) -> Timestamp {
        self.global_cmt_ts()
    }

    fn query_at(&self, qts: Timestamp, specs: &[QuerySpec]) -> Result<Vec<QueryOutput>> {
        let ans = self.query(qts, specs, DegradedPolicy::Refuse)?;
        ans.parts
            .into_iter()
            .map(|p| match p {
                RoutedPart::Output(out) => Ok(out),
                RoutedPart::Unavailable { .. } => Err(Error::Degraded),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aets_common::{
        ColumnId, DmlOp, EpochId, FxHashSet, GroupId, Lsn, RowKey, TableId, TxnId, Value,
    };
    use aets_replay::TableGrouping;
    use aets_wal::{DmlEntry, TxnLog};

    fn entry(table: u32, key: u64, ts: u64, txn: u64) -> DmlEntry {
        DmlEntry {
            lsn: Lsn::new(ts * 100 + key),
            txn_id: TxnId::new(txn),
            ts: Timestamp::from_micros(ts),
            table: TableId::new(table),
            op: DmlOp::Insert,
            key: RowKey::new(key),
            row_version: 1,
            cols: vec![(ColumnId::new(0), Value::Int((ts * 10 + key) as i64))],
            before: None,
        }
    }

    fn plan() -> ShardPlan {
        let g = TableGrouping::new(
            4,
            vec![
                vec![TableId::new(0), TableId::new(1)],
                vec![TableId::new(2)],
                vec![TableId::new(3)],
            ],
            vec![10.0, 5.0, 1.0],
            &FxHashSet::default(),
        )
        .expect("valid grouping");
        ShardPlan::new(g, vec![0, 1, 0], 2).expect("valid plan")
    }

    /// 8 epochs, one txn each, entries round-robining over the 4 tables.
    fn stream() -> Vec<Epoch> {
        (0..8u64)
            .map(|i| Epoch {
                id: EpochId::new(i),
                txns: vec![TxnLog {
                    txn_id: TxnId::new(i + 1),
                    commit_ts: Timestamp::from_micros(100 * (i + 1)),
                    entries: vec![
                        entry((i % 4) as u32, i, 100 * (i + 1), i + 1),
                        entry(((i + 1) % 4) as u32, i, 100 * (i + 1), i + 1),
                    ],
                }],
            })
            .collect()
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("aets-fleet-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn count_all(fleet: &Fleet, qts: Timestamp) -> Vec<usize> {
        let specs: Vec<QuerySpec> = (0..4).map(|t| QuerySpec::count(TableId::new(t))).collect();
        let ans = fleet.query(qts, &specs, DegradedPolicy::Refuse).expect("query");
        assert!(ans.is_complete());
        ans.parts
            .iter()
            .map(|p| match p {
                RoutedPart::Output(QueryOutput::Count(c)) => *c,
                other => panic!("expected count, got {other:?}"),
            })
            .collect()
    }

    #[test]
    fn fleet_replays_and_routes_without_faults() {
        let mut fleet =
            Fleet::open(plan(), scratch("clean"), FleetOptions::default()).expect("open");
        let epochs = stream();
        let target = epochs.last().expect("nonempty").max_commit_ts();
        for e in &epochs {
            fleet.enqueue(e);
        }
        let ticks = fleet.run_until_fresh(target, 64).expect("drain");
        assert!(ticks >= 2, "two shards at batch 4 need at least 2 ticks for 8 epochs");
        assert_eq!(fleet.global_cmt_ts(), target);
        assert_eq!(fleet.metrics().failovers, 0);
        // Each epoch writes 2 entries over tables (i, i+1) % 4 with key i:
        // every table ends up with exactly 4 distinct keys.
        assert_eq!(count_all(&fleet, target), vec![4, 4, 4, 4]);
    }

    #[test]
    fn killed_shard_fails_over_and_rejoins_within_bound() {
        let opts = FleetOptions { failover_after: 2, ..Default::default() };
        let mut fleet = Fleet::open(plan(), scratch("failover"), opts).expect("open");
        let epochs = stream();
        let target = epochs.last().expect("nonempty").max_commit_ts();
        for e in &epochs[..4] {
            fleet.enqueue(e);
        }
        fleet.run_until_fresh(epochs[3].max_commit_ts(), 64).expect("first half");

        fleet.kill_shard(1);
        assert_eq!(fleet.health()[1], ShardHealth::Down);
        let before = fleet.global_cmt_ts();
        for e in &epochs[4..] {
            fleet.enqueue(e);
        }
        // The dead shard freezes the fleet watermark (stale, not wrong).
        fleet.tick().expect("tick");
        assert_eq!(fleet.global_cmt_ts(), before, "down shard must freeze the fleet watermark");
        // Second miss hits the threshold: failover runs in this tick.
        fleet.tick().expect("tick");
        assert_eq!(fleet.metrics().failovers, 1);
        assert_eq!(fleet.health()[1], ShardHealth::Healthy);
        // Bootstrap came from shipped state, not a cold full replay.
        let rec = fleet.shard(1).recovery().expect("rebooted");
        assert!(
            rec.restored_seq.is_some() || rec.suffix_epochs > 0,
            "replacement must restore from checkpoint and/or WAL suffix"
        );
        fleet.run_until_fresh(target, 64).expect("second half");
        assert_eq!(count_all(&fleet, target), vec![4, 4, 4, 4]);
    }

    #[test]
    fn degraded_policy_refuses_or_answers_partially() {
        let opts = FleetOptions { failover_after: 10, ..Default::default() };
        let mut fleet = Fleet::open(plan(), scratch("degraded"), opts).expect("open");
        let epochs = stream();
        let target = epochs.last().expect("nonempty").max_commit_ts();
        for e in &epochs {
            fleet.enqueue(e);
        }
        fleet.run_until_fresh(target, 64).expect("drain");

        fleet.kill_shard(1);
        let specs = vec![
            QuerySpec::count(TableId::new(0)), // shard 0
            QuerySpec::count(TableId::new(2)), // shard 1 (down)
        ];
        let err = fleet.query(target, &specs, DegradedPolicy::Refuse).expect_err("must refuse");
        assert_eq!(err, Error::Degraded);

        let ans = fleet.query(target, &specs, DegradedPolicy::Partial).expect("partial");
        assert!(!ans.is_complete());
        assert_eq!(ans.degraded_shards, vec![1]);
        assert_eq!(ans.parts[0], RoutedPart::Output(QueryOutput::Count(4)));
        assert_eq!(ans.parts[1], RoutedPart::Unavailable { shard: 1 });
        assert!(ans.outputs().is_none());
    }

    #[test]
    fn sessions_follow_failover_repins() {
        let opts = FleetOptions { failover_after: 1, ..Default::default() };
        let mut fleet = Fleet::open(plan(), scratch("repin"), opts).expect("open");
        let epochs = stream();
        let target = epochs.last().expect("nonempty").max_commit_ts();
        for e in &epochs {
            fleet.enqueue(e);
        }
        fleet.run_until_fresh(target, 64).expect("drain");

        let pinned = Timestamp::from_micros(300);
        let session = fleet.open_session(pinned);
        let floor_before = fleet.shard(1).backup().expect("up").floor().floor();
        assert_eq!(floor_before, pinned);

        fleet.kill_shard(1);
        fleet.tick().expect("failover tick");
        assert_eq!(fleet.metrics().failovers, 1);
        // The replacement's *fresh* floor carries the pin already.
        let floor_after = fleet.shard(1).backup().expect("rebooted").floor().floor();
        assert_eq!(floor_after, pinned, "session pin must survive the failover");

        drop(session);
        assert_eq!(
            fleet.shard(1).backup().expect("rebooted").floor().floor(),
            Timestamp::MAX,
            "dropping the fleet session releases every shard pin"
        );
    }

    #[test]
    fn groups_unowned_by_a_shard_advance_via_heartbeats() {
        let mut fleet = Fleet::open(plan(), scratch("hb"), FleetOptions::default()).expect("open");
        let epochs = stream();
        let target = epochs.last().expect("nonempty").max_commit_ts();
        for e in &epochs {
            fleet.enqueue(e);
        }
        fleet.run_until_fresh(target, 64).expect("drain");
        // Shard 1 owns only group 1, yet its board must have advanced all
        // three groups to the stream head (heartbeat mini-txns).
        let board = fleet.shard(1).backup().expect("up").board().clone();
        for g in 0..3 {
            assert_eq!(board.tg_cmt_ts(GroupId::new(g)), target, "group {g} stale on shard 1");
        }
    }
}
