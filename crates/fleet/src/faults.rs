//! Deterministic fleet-level fault injection.
//!
//! The WAL-level [`aets_wal::FaultInjector`] corrupts *deliveries*; this
//! plan breaks *shards*: whole-process crashes, wedged (hung) nodes,
//! lost heartbeats, and stale watermark reports. Faults are drawn from
//! the same `splitmix64` generator, keyed by `(seed, shard, tick)`, so a
//! chaos run is a pure function of its seed — every crash, every missed
//! heartbeat, every failover lands on the same tick on every machine.

use aets_common::splitmix64;

/// A fleet-level fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetFaultKind {
    /// The shard process dies: in-memory state is dropped; the WAL and
    /// checkpoint directories survive for the failover bootstrap.
    ShardCrash,
    /// The shard wedges for a few ticks: it stops ingesting and
    /// heartbeating but its memory survives. If it stays wedged past the
    /// failover threshold the supervisor replaces it anyway.
    ShardHang,
    /// The heartbeat is lost in transit this tick: the shard is healthy
    /// but the coordinator counts a miss.
    HeartbeatLoss,
    /// The heartbeat arrives but reports the *previous* watermark — the
    /// report is stale, never wrong. Tests that the fleet watermark only
    /// lags, never overshoots.
    DelayedWatermark,
}

/// A deterministic schedule of fleet faults.
#[derive(Debug, Clone)]
pub struct FleetFaultPlan {
    /// Seed for the per-(shard, tick) draw.
    pub seed: u64,
    /// Probability that a given (shard, tick) draws a fault.
    pub rate: f64,
    /// Kinds to draw from (uniformly). Empty disables all faults.
    pub kinds: Vec<FleetFaultKind>,
    /// Hang durations are drawn from `1..=max_hang_ticks`.
    pub max_hang_ticks: u64,
}

impl FleetFaultPlan {
    /// A plan over all four kinds.
    pub fn new(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            rate,
            kinds: vec![
                FleetFaultKind::ShardCrash,
                FleetFaultKind::ShardHang,
                FleetFaultKind::HeartbeatLoss,
                FleetFaultKind::DelayedWatermark,
            ],
            max_hang_ticks: 3,
        }
    }

    /// Restricts the plan to `kinds`.
    pub fn kinds(mut self, kinds: Vec<FleetFaultKind>) -> Self {
        self.kinds = kinds;
        self
    }

    /// Overrides the hang-duration bound.
    pub fn max_hang(mut self, ticks: u64) -> Self {
        self.max_hang_ticks = ticks.max(1);
        self
    }

    fn draw(&self, shard: usize, tick: u64, salt: u64) -> u64 {
        // Two rounds decorrelate the low bits of neighbouring
        // (shard, tick) pairs; the salt separates the fault/duration
        // draws at the same coordinate.
        splitmix64(
            self.seed
                ^ splitmix64(
                    tick.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((shard as u64) << 32) ^ salt,
                ),
        )
    }

    /// The fault (if any) injected at `(shard, tick)`.
    pub fn fault_at(&self, shard: usize, tick: u64) -> Option<FleetFaultKind> {
        if self.kinds.is_empty() || self.rate <= 0.0 {
            return None;
        }
        let r = self.draw(shard, tick, 0);
        // Top 53 bits -> uniform f64 in [0, 1).
        let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= self.rate {
            return None;
        }
        let pick = self.draw(shard, tick, 1) as usize % self.kinds.len();
        Some(self.kinds[pick])
    }

    /// Hang duration for a [`FleetFaultKind::ShardHang`] at `(shard, tick)`.
    pub fn hang_ticks(&self, shard: usize, tick: u64) -> u64 {
        1 + self.draw(shard, tick, 2) % self.max_hang_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = FleetFaultPlan::new(42, 0.3);
        let b = FleetFaultPlan::new(42, 0.3);
        let c = FleetFaultPlan::new(43, 0.3);
        let sched = |p: &FleetFaultPlan| {
            (0..4)
                .flat_map(|s| (0..200u64).map(move |t| (s, t)))
                .map(|(s, t)| p.fault_at(s, t))
                .collect::<Vec<_>>()
        };
        assert_eq!(sched(&a), sched(&b));
        assert_ne!(sched(&a), sched(&c), "different seed, different schedule");
    }

    #[test]
    fn rate_bounds_fault_frequency() {
        let p = FleetFaultPlan::new(7, 0.2);
        let hits = (0..10_000u64).filter(|&t| p.fault_at(0, t).is_some()).count();
        assert!((1_500..2_500).contains(&hits), "~20% expected, got {hits}");
        assert!(FleetFaultPlan::new(7, 0.0).fault_at(0, 3).is_none());
        let none = FleetFaultPlan::new(7, 1.0).kinds(vec![]);
        assert!(none.fault_at(0, 3).is_none(), "no kinds, no faults");
    }

    #[test]
    fn hang_ticks_respects_bound() {
        let p = FleetFaultPlan::new(9, 1.0).max_hang(4);
        for t in 0..500 {
            let h = p.hang_ticks(1, t);
            assert!((1..=4).contains(&h));
        }
    }
}
