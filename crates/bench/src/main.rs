//! `repro` — regenerates every table and figure of the AETS paper.
//!
//! ```text
//! repro [--fast] <experiment>...
//! repro all            # everything, paper scale
//! repro --fast all     # smoke scale (seconds)
//! repro fig8 table3    # selected experiments
//! ```

use aets_bench::experiments::{self, Scale};

/// One experiment: its CLI name and entry point.
type Experiment = (&'static str, fn(Scale));

const EXPERIMENTS: &[Experiment] = &[
    ("table1", experiments::table1),
    ("fig7", experiments::fig7),
    ("fig8", experiments::fig8),
    ("fig9", experiments::fig9),
    ("fig10", experiments::fig10),
    ("fig11", experiments::fig11),
    ("table2", experiments::table2),
    ("fig12", experiments::fig12),
    ("fig13", experiments::fig13),
    ("table3", experiments::table3),
    ("table4", experiments::table4),
    ("fig14", experiments::fig14),
    ("validate", experiments::validate),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let scale = if fast { Scale::fast() } else { Scale::full() };
    let selected: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();

    if selected.is_empty() {
        eprintln!("usage: repro [--fast] <experiment|all>...");
        eprintln!("experiments:");
        for (name, _) in EXPERIMENTS {
            eprintln!("  {name}");
        }
        std::process::exit(2);
    }

    let run_all = selected.contains(&"all");
    let mut matched = false;
    for (name, f) in EXPERIMENTS {
        if run_all || selected.iter().any(|s| s == name) {
            matched = true;
            let t0 = std::time::Instant::now();
            f(scale);
            println!("[{name} done in {:.1?}]\n", t0.elapsed());
        }
    }
    if !matched {
        eprintln!("no experiment matched {selected:?}");
        std::process::exit(2);
    }
}
