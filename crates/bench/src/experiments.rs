//! One function per paper table/figure. Each prints the same rows/series
//! the paper reports and writes a JSON blob under `results/`.

use crate::json;
use crate::{
    bustracker_bench, chbench_bench, delay_summary, map_groups, ms, run_with_delays, slot_len_us,
    tpcc_bench, write_json, Bench, EngineSel, TextTable,
};
use aets_forecast::{evaluate, Arima, Dtgm, DtgmConfig, Forecaster, Ha, Qb5000, RateSeries};
use aets_replay::UrgencyMode;
use aets_simulator::{
    evaluate_by_class, evaluate_by_slot, simulate, SimAetsConfig, SimConfig, SimEngineKind,
};
use aets_workloads::bustracker;

/// Scale knobs for one full run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Transactions per throughput/visibility workload.
    pub txns: usize,
    /// Forecasting series length (slots).
    pub series_slots: usize,
    /// DTGM training epochs.
    pub dtgm_epochs: usize,
}

impl Scale {
    /// Paper-faithful scale (minutes of runtime).
    pub fn full() -> Self {
        Self { txns: 40_000, series_slots: 420, dtgm_epochs: 70 }
    }

    /// Quick smoke scale (seconds of runtime).
    pub fn fast() -> Self {
        Self { txns: 6_000, series_slots: 160, dtgm_epochs: 30 }
    }
}

const THREADS: usize = 32;
const EPOCH: usize = 2048;

/// Table I: workload characteristics.
pub fn table1(scale: Scale) {
    println!("== Table I: OLAP-relevant share of the OLTP log ==");
    let mut t = TextTable::new(&["benchmark", "num(T)", "num(A)", "num(A∩T)", "ratio", "paper"]);
    let mut blobs = Vec::new();

    let tpcc = aets_workloads::tpcc::generate(&aets_workloads::tpcc::TpccConfig {
        num_txns: scale.txns.min(20_000),
        ..Default::default()
    });
    let seats = aets_workloads::seats::generate(&aets_workloads::seats::SeatsConfig {
        num_txns: scale.txns.min(20_000),
        ..Default::default()
    });
    let ch = aets_workloads::chbench::generate(&aets_workloads::tpcc::TpccConfig {
        num_txns: scale.txns.min(20_000),
        olap_qps: 2_000.0,
        ..Default::default()
    });
    let bus = aets_workloads::bustracker::generate(&bustracker::BusTrackerConfig {
        num_txns: scale.txns.min(20_000),
        ..Default::default()
    });

    for (w, paper) in [(&tpcc, "90.98%"), (&seats, "38.08%"), (&bus, "37.12%")] {
        let row = aets_workloads::table_one_row(w);
        t.row(vec![
            row.label.clone(),
            row.num_written.to_string(),
            row.num_analytic.to_string(),
            row.num_intersection.to_string(),
            format!("{:.2}%", row.ratio * 100.0),
            paper.to_string(),
        ]);
        blobs.push(json!({
            "label": row.label, "written": row.num_written, "analytic": row.num_analytic,
            "intersection": row.num_intersection, "ratio": row.ratio, "paper": paper,
        }));
    }
    let ch_paper = ["60.83%", "18.79%", "74.93%", "66.91%", "90.79%", "60.83%"];
    for q in 1..=6u32 {
        if let Some(row) = aets_workloads::table_one_row_for_class(&ch, q) {
            t.row(vec![
                row.label.clone(),
                row.num_written.to_string(),
                row.num_analytic.to_string(),
                row.num_intersection.to_string(),
                format!("{:.2}%", row.ratio * 100.0),
                ch_paper[q as usize - 1].to_string(),
            ]);
            blobs.push(json!({
                "label": row.label, "written": row.num_written, "analytic": row.num_analytic,
                "intersection": row.num_intersection, "ratio": row.ratio,
                "paper": ch_paper[q as usize - 1],
            }));
        }
    }
    println!("{}", t.render());
    write_json("table1", &blobs);
}

/// Figure 7: BusTracker access rates of three typical tables.
pub fn fig7(_scale: Scale) {
    println!("== Figure 7: BusTracker table access rate over time ==");
    let tables = [0usize, 1, 2]; // one per regime: sinusoid / shift / peaks
    let mut t = TextTable::new(&["slot", "m.trip", "m.calendar", "m.estimate"]);
    let mut series = vec![Vec::new(); 3];
    for slot in 0..bustracker::DAY_SLOTS {
        let rates: Vec<f64> = tables.iter().map(|&ti| bustracker::access_rate(ti, slot)).collect();
        t.row(vec![
            slot.to_string(),
            format!("{:.1}", rates[0]),
            format!("{:.1}", rates[1]),
            format!("{:.1}", rates[2]),
        ]);
        for (i, r) in rates.iter().enumerate() {
            series[i].push(*r);
        }
    }
    println!("{}", t.render());
    write_json(
        "fig7",
        &json!({ "tables": ["m.trip", "m.calendar", "m.estimate"], "series": series }),
    );
}

fn perf_panels(name: &str, bench: &Bench, scale_txns: usize) {
    let _ = scale_txns;
    // 0.50 keeps even the slowest engine (C5, ~1.8x AETS per-entry cost)
    // below saturation during paced visibility runs.
    let cost = bench.calibrated_cost(THREADS, 0.50);

    // (a) normalized replay throughput (divided by primary throughput).
    let offered = bench.offered_rate() * 1e6; // entries per second
    let mut ta = TextTable::new(&["engine", "replay entries/s", "normalized vs primary"]);
    let mut blob_tput = Vec::new();
    let mut results = Vec::new();
    for sel in EngineSel::ALL {
        let outcome = bench.run(sel, THREADS, EPOCH, &cost, false);
        let tput = outcome.entries_per_sec();
        ta.row(vec![
            sel.name().to_string(),
            format!("{:.0}", tput),
            format!("{:.2}x", tput / offered),
        ]);
        blob_tput.push(json!({ "engine": sel.name(), "entries_per_sec": tput,
            "normalized": tput / offered }));
        results.push((sel, outcome));
    }
    println!("-- ({name}a) normalized replay throughput @ {THREADS} threads --");
    println!("{}", ta.render());

    // (b) normalized replay time: stage walls normalized by AETS cold.
    let aets = &results.iter().find(|(s, _)| *s == EngineSel::Aets).expect("aets ran").1;
    let aets_cold = aets.stage2_wall.max(1.0);
    let mut tb = TextTable::new(&["series", "virtual time", "normalized vs AETS(cold)"]);
    let mut blob_time = Vec::new();
    tb.row(vec![
        "AETS(hot)".into(),
        ms(aets.stage1_wall),
        format!("{:.2}x", aets.stage1_wall / aets_cold),
    ]);
    tb.row(vec!["AETS(cold)".into(), ms(aets.stage2_wall), "1.00x".into()]);
    blob_time.push(json!({ "series": "AETS(hot)", "us": aets.stage1_wall }));
    blob_time.push(json!({ "series": "AETS(cold)", "us": aets.stage2_wall }));
    for (sel, outcome) in &results {
        if *sel == EngineSel::Aets {
            continue;
        }
        let total = outcome.wall_us as f64;
        tb.row(vec![
            format!("{}(total)", sel.name()),
            ms(total),
            format!("{:.2}x", total / aets_cold),
        ]);
        blob_time.push(json!({ "series": format!("{}(total)", sel.name()), "us": total }));
    }
    println!("-- ({name}b) replay time (hot stage vs cold stage vs totals) --");
    println!("{}", tb.render());

    // (c) visibility delay under real-time pacing.
    let mut tc = TextTable::new(&["engine", "visibility delay"]);
    let mut blob_delay = Vec::new();
    let mut aets_mean = 0.0f64;
    let mut atr_mean = 0.0f64;
    for sel in EngineSel::ALL {
        let (_, stats) = run_with_delays(bench, sel, THREADS, EPOCH, &cost);
        tc.row(vec![sel.name().to_string(), delay_summary(&stats)]);
        blob_delay.push(json!({ "engine": sel.name(), "mean_us": stats.mean(),
            "p95_us": stats.percentile(95.0), "n": stats.delays.len() }));
        if sel == EngineSel::Aets {
            aets_mean = stats.mean();
        }
        if sel == EngineSel::Atr {
            atr_mean = stats.mean();
        }
    }
    println!("-- ({name}c) visibility delay @ {THREADS} threads (paced replication) --");
    println!("{}", tc.render());
    if aets_mean > 0.0 {
        println!("   ATR/AETS mean delay ratio: {:.2}x (paper: ~1.3x)\n", atr_mean / aets_mean);
    }
    write_json(
        &format!("fig{name}"),
        &json!({ "throughput": blob_tput, "replay_time": blob_time, "delay": blob_delay }),
    );
}

/// Figure 8: TPC-C performance comparison at 32 threads.
pub fn fig8(scale: Scale) {
    println!("== Figure 8: TPC-C @ 32 threads ==");
    let bench = tpcc_bench(scale.txns);
    perf_panels("8", &bench, scale.txns);
}

/// Figure 9: BusTracker performance comparison at 32 threads.
pub fn fig9(scale: Scale) {
    println!("== Figure 9: BusTracker @ 32 threads ==");
    let bench = bustracker_bench(scale.txns, 35);
    perf_panels("9", &bench, scale.txns);
}

/// Figure 10: CH-benCHmark per-query visibility delay.
pub fn fig10(scale: Scale) {
    println!("== Figure 10: CH-benCHmark visibility delay per query ==");
    let bench = chbench_bench(scale.txns);
    let cost = bench.calibrated_cost(THREADS, 0.70);
    let mut per_engine = Vec::new();
    let mut table = TextTable::new(&["query", "AETS", "ATR", "C5"]);
    let mut rows: Vec<Vec<String>> = (1..=22).map(|q| vec![format!("Q{q}")]).collect();
    for sel in [EngineSel::Aets, EngineSel::Atr, EngineSel::C5] {
        let outcome = bench.run(sel, THREADS, EPOCH, &cost, true);
        let grouping = bench.grouping_for(sel);
        let by_class = evaluate_by_class(&outcome, &bench.workload.queries, |tables| {
            map_groups(grouping, sel, tables)
        });
        let mut means = [0.0f64; 23];
        for (class, stats) in &by_class {
            if (*class as usize) < means.len() {
                means[*class as usize] = stats.mean();
            }
        }
        for q in 1..=22usize {
            rows[q - 1].push(ms(means[q]));
        }
        per_engine.push(json!({ "engine": sel.name(),
            "mean_us_per_query": means[1..=22].to_vec() }));
    }
    for r in rows {
        table.row(r);
    }
    println!("{}", table.render());
    write_json("fig10", &per_engine);
}

/// Figure 11: multi-core scalability (normalized to single-thread ATR).
pub fn fig11(scale: Scale) {
    println!("== Figure 11: replay throughput vs threads (normalized by ATR@1) ==");
    let bench = tpcc_bench(scale.txns);
    let cost = bench.calibrated_cost(THREADS, 0.70);
    let threads = [1usize, 2, 4, 8, 16, 32, 48, 64];
    let atr1 = bench.run(EngineSel::Atr, 1, EPOCH, &cost, false).entries_per_sec();
    let mut t = TextTable::new(&["threads", "ATR", "C5", "AETS"]);
    let mut blob = Vec::new();
    for &th in &threads {
        let row: Vec<f64> = [EngineSel::Atr, EngineSel::C5, EngineSel::Aets]
            .iter()
            .map(|sel| bench.run(*sel, th, EPOCH, &cost, false).entries_per_sec() / atr1)
            .collect();
        t.row(vec![
            th.to_string(),
            format!("{:.2}", row[0]),
            format!("{:.2}", row[1]),
            format!("{:.2}", row[2]),
        ]);
        blob.push(json!({ "threads": th, "atr": row[0], "c5": row[1], "aets": row[2] }));
    }
    println!("{}", t.render());
    write_json("fig11", &blob);
}

/// Table II: time breakdown of AETS (dispatch / replay / commit).
pub fn table2(scale: Scale) {
    println!("== Table II: AETS management overhead ==");
    let mut t = TextTable::new(&["dataset", "dispatch", "replay", "commit", "paper (d/r/c)"]);
    let mut blob = Vec::new();
    let benches: [(&str, Bench, &str); 3] = [
        ("TPC-C", tpcc_bench(scale.txns), "0.37/99.47/0.16"),
        ("BusTracker", bustracker_bench(scale.txns, 35), "0.80/98.44/0.76"),
        ("CH-benCHmark", chbench_bench(scale.txns), "0.72/99.08/0.20"),
    ];
    for (name, bench, paper) in benches {
        let cost = bench.calibrated_cost(THREADS, 0.70);
        let outcome = bench.run(EngineSel::Aets, THREADS, EPOCH, &cost, false);
        let (d, r, c) = outcome.breakdown();
        t.row(vec![
            name.to_string(),
            format!("{:.2}%", d * 100.0),
            format!("{:.2}%", r * 100.0),
            format!("{:.2}%", c * 100.0),
            paper.to_string(),
        ]);
        blob.push(json!({ "dataset": name, "dispatch": d, "replay": r, "commit": c }));
    }
    println!("{}", t.render());
    write_json("table2", &blob);
}

/// Figure 12: effect of epoch size on visibility delay.
pub fn fig12(scale: Scale) {
    println!("== Figure 12: visibility delay vs epoch size (TPC-C, 32 threads) ==");
    let bench = tpcc_bench(scale.txns);
    // Near saturation + a per-epoch coordination cost: small epochs choke
    // on overhead, large epochs choke on batching.
    let mut cost = bench.calibrated_cost(THREADS, 0.80);
    cost.stage_setup = 9_000.0;
    let sizes = [64usize, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];
    let mut t = TextTable::new(&["epoch size", "mean visibility delay"]);
    let mut blob = Vec::new();
    for &sz in &sizes {
        let (_, stats) = run_with_delays(&bench, EngineSel::Aets, THREADS, sz, &cost);
        t.row(vec![sz.to_string(), ms(stats.mean())]);
        blob.push(json!({ "epoch_size": sz, "mean_us": stats.mean() }));
    }
    println!("{}", t.render());
    write_json("fig12", &blob);
}

/// Builds per-epoch group-rate providers for Figure 13.
fn group_rates_for_slot(bench: &Bench, rates_at_slot: &[f64]) -> Vec<f64> {
    (0..bench.grouping.num_groups() as u32)
        .map(|g| {
            let members = bench.grouping.members(aets_common::GroupId::new(g));
            members
                .iter()
                .map(|t| rates_at_slot.get(t.index()).copied().unwrap_or(0.0))
                .sum::<f64>()
                / members.len() as f64
        })
        .collect()
}

/// Figure 13: adaptive thread allocation on BusTracker — AETS (DTGM
/// rates) vs AETS-HA (trailing-average rates) vs AETS-NOAC (no access
/// rates).
pub fn fig13(scale: Scale) {
    println!("== Figure 13: per-slot visibility delay under different allocators ==");
    let slots = 35usize;
    let bench = crate::bustracker_bench_per_table(scale.txns, slots);
    let mut cost = bench.calibrated_cost(THREADS, 0.75);
    cost.stage_setup = 100.0;
    let slot_us = slot_len_us(&bench.workload, slots);

    // Ground truth rates per slot (by table), and the history the
    // predictors see: previous "days" of the same process.
    let truth: Vec<Vec<f64>> = (0..slots)
        .map(|s| (0..bench.workload.num_tables()).map(|t| bustracker::access_rate(t, s)).collect())
        .collect();
    // History: whole previous "days" of the same process, so the history
    // length stays phase-aligned with the evaluation day.
    let days = (scale.series_slots / bustracker::DAY_SLOTS).max(3);
    let train = RateSeries::bustracker_hot(days * bustracker::DAY_SLOTS, 0.1, 99);
    let dtgm = Dtgm::fit(
        &train,
        &bustracker::access_graph(),
        DtgmConfig {
            epochs: scale.dtgm_epochs,
            steps_per_epoch: 16,
            lr: 2e-3,
            decay_every: (scale.dtgm_epochs / 2).max(1),
            max_horizon: 1,
            ..DtgmConfig::default()
        },
    )
    .expect("series long enough for DTGM");

    // Map epoch index -> slot via the epoch's position in the stream.
    // Finer epochs than the default so the allocator can re-plan several
    // times per slot (the paper's epochs are ~0.2 s vs 1-minute slots).
    let fig13_epoch = 256usize;
    let profiles = bench.profiles(EngineSel::Aets, fig13_epoch, &cost, true);
    let epoch_slot: Vec<usize> = profiles
        .iter()
        .map(|p| ((p.max_commit_ts.as_micros() / slot_us) as usize).min(slots - 1))
        .collect();

    // Three allocators: DTGM-predicted, trailing-average (last 5 slots of
    // truth), and NOAC (ignore rates).
    let dtgm_rates: Vec<Vec<f64>> = (0..slots)
        .map(|s| {
            // Predict slot s one step ahead: the model sees the full
            // history (previous days) plus the current day up to slot s.
            // `train` ends on a day boundary, so history length stays
            // phase-aligned.
            let mut hist = train.values.clone();
            // The model is trained on the 14 hot tables only.
            hist.extend(truth[..s].iter().map(|row| row[..bustracker::NUM_HOT].to_vec()));
            let pred = dtgm.forecast(&hist, 1);
            let mut by_table = vec![0.0; bench.workload.num_tables()];
            for (t, v) in pred[0].iter().enumerate() {
                by_table[t] = *v;
            }
            group_rates_for_slot(&bench, &by_table)
        })
        .collect();
    let ha_rates: Vec<Vec<f64>> = (0..slots)
        .map(|s| {
            let lo = s.saturating_sub(5);
            let n = (s - lo).max(1);
            let mut avg = vec![0.0; bench.workload.num_tables()];
            for row in &truth[lo..lo + n] {
                for (t, v) in row.iter().enumerate() {
                    avg[t] += v / n as f64;
                }
            }
            group_rates_for_slot(&bench, &avg)
        })
        .collect();

    let mut blob = Vec::new();
    let mut table = TextTable::new(&["slot", "AETS", "AETS-HA", "AETS-NOAC"]);
    let mut series: Vec<Vec<f64>> = Vec::new();
    for (label, urgency, rates) in [
        ("AETS", UrgencyMode::Log, Some(&dtgm_rates)),
        ("AETS-HA", UrgencyMode::Log, Some(&ha_rates)),
        ("AETS-NOAC", UrgencyMode::Ignore, None),
    ] {
        let kind = SimEngineKind::TwoPhase(SimAetsConfig {
            two_stage: true,
            adaptive: true,
            urgency,
            ..Default::default()
        });
        let rate_fn = |eidx: usize| -> Vec<f64> {
            match rates {
                Some(r) => r[epoch_slot[eidx.min(epoch_slot.len() - 1)]].clone(),
                None => vec![1.0; bench.grouping.num_groups()],
            }
        };
        let outcome = simulate(
            &profiles,
            &bench.grouping,
            &SimConfig { kind, threads: THREADS, cost: cost.clone() },
            Some(&rate_fn),
        );
        let per_slot =
            evaluate_by_slot(&outcome, &bench.workload.queries, slot_us, slots, |tables| {
                map_groups(&bench.grouping, EngineSel::Aets, tables)
            });
        blob.push(json!({ "series": label, "per_slot_mean_us": per_slot }));
        series.push(per_slot);
        let _ = label;
    }
    #[allow(clippy::needless_range_loop)]
    for s in 5..slots {
        table.row(vec![(s - 5).to_string(), ms(series[0][s]), ms(series[1][s]), ms(series[2][s])]);
    }
    println!("{}", table.render());
    let avg = |v: &[f64]| v[5..].iter().sum::<f64>() / (slots - 5) as f64;
    println!(
        "averages after warm-up: AETS {} | AETS-HA {} | AETS-NOAC {}\n",
        ms(avg(&series[0])),
        ms(avg(&series[1])),
        ms(avg(&series[2]))
    );
    write_json("fig13", &blob);
}

/// Trains the Table III model set and returns `(name, mape@15/30/60)`.
pub fn table3(scale: Scale) {
    println!("== Table III: access-rate prediction MAPE ==");
    let full = RateSeries::bustracker_hot(scale.series_slots, 0.10, 42);
    let split = scale.series_slots * 3 / 4;
    let (train, _) = full.split(split);
    let horizons = [15usize, 30, 60];
    // Horizons are capped by the available test region.
    let max_h = 60usize.min(scale.series_slots - split - 1);

    let ha = Ha { window: 60 };
    let arima = Arima::fit(&train, 3);
    let qb = Qb5000::fit(&train, 12, max_h, 42);
    let dtgm = Dtgm::fit(
        &train,
        &bustracker::access_graph(),
        DtgmConfig {
            epochs: scale.dtgm_epochs,
            steps_per_epoch: 16,
            lr: 2e-3,
            decay_every: (scale.dtgm_epochs / 2).max(1),
            max_horizon: max_h,
            ..Default::default()
        },
    )
    .expect("series long enough for DTGM");

    let models: Vec<&dyn Forecaster> = vec![&ha, &arima, &qb, &dtgm];
    let mut t = TextTable::new(&["model", "15 slots", "30 slots", "60 slots", "paper@15"]);
    let paper = ["30.30%", "18.66%", "18.12%", "16.80%"];
    let mut blob = Vec::new();
    for (mi, m) in models.iter().enumerate() {
        let mut row = vec![m.name().to_string()];
        let mut errs = Vec::new();
        for &h in &horizons {
            let h = h.min(max_h);
            let e = evaluate(*m, &full, split, h);
            row.push(format!("{:.2}%", e * 100.0));
            errs.push(e);
        }
        row.push(paper[mi].to_string());
        t.row(row);
        blob.push(json!({ "model": m.name(), "mape": errs }));
    }
    println!("{}", t.render());
    write_json("table3", &blob);
}

/// Table IV: DTGM vs its no-GCN ablation.
pub fn table4(scale: Scale) {
    println!("== Table IV: DTGM ablation ==");
    let full = RateSeries::bustracker_hot(scale.series_slots, 0.10, 42);
    let split = scale.series_slots * 3 / 4;
    let (train, _) = full.split(split);
    let h = 15usize;
    let mut t = TextTable::new(&["model", "MAPE", "paper"]);
    let mut blob = Vec::new();
    for (use_gcn, paper) in [(false, "16.96%"), (true, "16.80%")] {
        let m = Dtgm::fit(
            &train,
            &bustracker::access_graph(),
            DtgmConfig {
                use_gcn,
                epochs: scale.dtgm_epochs,
                steps_per_epoch: 16,
                lr: 2e-3,
                decay_every: (scale.dtgm_epochs / 2).max(1),
                max_horizon: h,
                ..Default::default()
            },
        )
        .expect("series long enough for DTGM");
        let e = evaluate(&m, &full, split, h);
        t.row(vec![m.name().to_string(), format!("{:.2}%", e * 100.0), paper.to_string()]);
        blob.push(json!({ "model": m.name(), "mape": e }));
    }
    println!("{}", t.render());
    write_json("table4", &blob);
}

/// Figure 14: hidden-dimension hyper-parameter sweep.
pub fn fig14(scale: Scale) {
    println!("== Figure 14: DTGM hidden dimension sweep ==");
    let full = RateSeries::bustracker_hot(scale.series_slots, 0.10, 42);
    let split = scale.series_slots * 3 / 4;
    let (train, _) = full.split(split);
    let h = 15usize;
    let dims = [16usize, 32, 48, 64];
    let mut t = TextTable::new(&["hidden", "MAPE"]);
    let mut blob = Vec::new();
    for &d in &dims {
        let m = Dtgm::fit(
            &train,
            &bustracker::access_graph(),
            DtgmConfig {
                hidden: d,
                epochs: scale.dtgm_epochs,
                steps_per_epoch: 16,
                lr: 2e-3,
                decay_every: (scale.dtgm_epochs / 2).max(1),
                max_horizon: h,
                ..Default::default()
            },
        )
        .expect("series long enough for DTGM");
        let e = evaluate(&m, &full, split, h);
        t.row(vec![d.to_string(), format!("{:.2}%", e * 100.0)]);
        blob.push(json!({ "hidden": d, "mape": e }));
    }
    println!("{}", t.render());
    write_json("fig14", &blob);
}

/// Cross-engine correctness validation on the real threaded engines:
/// every engine must converge to the serial oracle's state.
pub fn validate(scale: Scale) {
    use aets_memtable::MemDb;
    use aets_replay::{AetsConfig, AetsEngine, AtrEngine, C5Engine, ReplayEngine, SerialEngine};
    println!("== Cross-engine state validation (real threaded engines) ==");
    let txns = scale.txns.min(5_000);
    for (name, bench) in [
        ("TPC-C", tpcc_bench(txns)),
        ("BusTracker", bustracker_bench(txns, 35)),
        ("CH-benCHmark", chbench_bench(txns)),
    ] {
        let epochs: Vec<aets_wal::EncodedEpoch> =
            aets_wal::batch_into_epochs(bench.workload.txns.clone(), 1024)
                .expect("valid epoch size")
                .iter()
                .map(aets_wal::encode_epoch)
                .collect();
        let n = bench.workload.num_tables();
        let oracle = MemDb::new(n);
        SerialEngine.replay_all(&epochs, &oracle).expect("serial replay");
        let want = oracle.digest_at(aets_common::Timestamp::MAX);

        let engines: Vec<(&str, Box<dyn ReplayEngine>)> = vec![
            (
                "AETS",
                Box::new(
                    AetsEngine::builder(bench.grouping.clone())
                        .config(AetsConfig { threads: 4, ..Default::default() })
                        .build()
                        .expect("valid config"),
                ),
            ),
            (
                "TPLR",
                Box::new(
                    AetsEngine::tplr_baseline(4, n, &bench.workload.analytic_tables)
                        .expect("valid config"),
                ),
            ),
            ("ATR", Box::new(AtrEngine::new(4).expect("valid config"))),
            ("C5", Box::new(C5Engine::new(4).expect("valid config"))),
        ];
        for (ename, engine) in engines {
            let db = MemDb::new(n);
            engine.replay_all(&epochs, &db).expect("replay");
            let got = db.digest_at(aets_common::Timestamp::MAX);
            assert_eq!(got, want, "{ename} diverged from oracle on {name}");
            println!("  {name:<14} {ename:<5} state digest OK ({want:#018x})");
        }
    }
    println!();
}
