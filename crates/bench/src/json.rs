//! Tiny JSON document model replacing the external `serde_json`
//! dependency for result blobs (offline build). Only what the experiment
//! writers need: construction via the [`crate::json!`] macro, conversion of the
//! workspace's scalar/collection types, and pretty printing.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (serialized in shortest-roundtrip form).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object. Keys stay in insertion order is not required by any
    /// consumer, so a sorted map keeps output deterministic.
    Obj(BTreeMap<String, Json>),
}

/// Conversion into [`Json`], the stand-in for `serde::Serialize`.
pub trait ToJson {
    /// Converts `self` to a JSON document.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

macro_rules! impl_to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}
impl_to_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl Json {
    /// Pretty-prints with 2-space indentation (the `to_string_pretty`
    /// layout the result blobs have always used).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Json`] object or array literal, mirroring `serde_json::json!`
/// for the shapes used in this crate.
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut map = std::collections::BTreeMap::new();
        $(map.insert(
            $key.to_string(),
            $crate::json::ToJson::to_json(&$val),
        );)*
        $crate::json::Json::Obj(map)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::json::Json::Arr(vec![
            $($crate::json::ToJson::to_json(&$val),)*
        ])
    };
    (null) => {
        $crate::json::Json::Null
    };
    ($val:expr) => {
        $crate::json::ToJson::to_json(&$val)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_and_array_literals_build() {
        let j = json!({ "a": 1, "b": "x", "c": [1.5, 2.0], "d": true });
        let Json::Obj(map) = &j else { panic!("expected object") };
        assert_eq!(map["a"], Json::Num(1.0));
        assert_eq!(map["b"], Json::Str("x".into()));
        assert_eq!(map["c"], Json::Arr(vec![Json::Num(1.5), Json::Num(2.0)]));
        assert_eq!(map["d"], Json::Bool(true));
    }

    #[test]
    fn nested_collections_convert() {
        let series: Vec<Vec<f64>> = vec![vec![1.0], vec![2.0, 3.0]];
        let j = json!({ "series": series, "tables": ["a", "b"] });
        let s = j.pretty();
        assert!(s.contains("\"series\""));
        assert!(s.contains("\"a\""));
    }

    #[test]
    fn pretty_output_is_valid_layout() {
        let j = json!({ "k": [1, 2], "s": "he said \"hi\"\n" });
        let s = j.pretty();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\\\"hi\\\""));
        assert!(s.contains("\\n"));
        // Integral floats print without a trailing ".0".
        assert!(s.contains("1") && !s.contains("1.0"));
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(Default::default()).pretty(), "{}");
        assert_eq!(json!(null).pretty(), "null");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
    }
}
