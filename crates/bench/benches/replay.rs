//! Replay-path microbenchmarks: dispatch (metadata routing), TPLR phase-1
//! translate, and a full engine pass.

use aets_memtable::MemDb;
use aets_replay::{
    dispatch_epoch, translate_entry, AetsConfig, AetsEngine, ReplayEngine, TableGrouping,
};
use aets_wal::encode_epoch;
use aets_workloads::tpcc::{self, TpccConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_replay(c: &mut Criterion) {
    let w = tpcc::generate(&TpccConfig { num_txns: 2_000, warehouses: 2, ..Default::default() });
    let (groups, rates) = tpcc::paper_grouping();
    let grouping = TableGrouping::new(w.num_tables(), groups, rates, &w.analytic_tables).unwrap();
    let epochs: Vec<_> = aets_wal::batch_into_epochs(w.txns.clone(), 2_048)
        .unwrap()
        .iter()
        .map(encode_epoch)
        .collect();
    let entries = w.total_entries() as u64;

    let mut g = c.benchmark_group("replay");
    g.sample_size(20);
    g.throughput(Throughput::Elements(epochs[0].txn_count as u64));
    g.bench_function("dispatch_epoch", |b| {
        b.iter(|| dispatch_epoch(std::hint::black_box(&epochs[0]), &grouping).unwrap())
    });

    let work = dispatch_epoch(&epochs[0], &grouping).unwrap();
    let db = MemDb::new(w.num_tables());
    let sample: Vec<_> = work.groups[0]
        .mini_txns
        .iter()
        .flat_map(|mt| mt.entry_ranges.iter().cloned())
        .take(1_000)
        .collect();
    g.throughput(Throughput::Elements(sample.len() as u64));
    g.bench_function("phase1_translate_1k", |b| {
        b.iter(|| {
            for r in &sample {
                let _ = translate_entry(&db, &work.bytes, r.clone()).unwrap();
            }
        })
    });

    g.throughput(Throughput::Elements(entries));
    g.bench_function("aets_full_replay_2t", |b| {
        let engine = AetsEngine::builder(grouping.clone())
            .config(AetsConfig { threads: 2, ..Default::default() })
            .build()
            .unwrap();
        b.iter(|| {
            let db = MemDb::new(w.num_tables());
            engine.replay_all(std::hint::black_box(&epochs), &db).unwrap()
        })
    });

    // Pipelined vs inline dispatch over a multi-epoch stream. Same run,
    // same stream: the delta isolates what the dispatcher thread hides —
    // with `n` epochs, up to `(n-1)/n` of total dispatch time overlaps
    // replay.
    let small_epochs: Vec<_> = aets_wal::batch_into_epochs(w.txns.clone(), 256)
        .unwrap()
        .iter()
        .map(encode_epoch)
        .collect();
    for (label, depth) in
        [("aets_multi_epoch_2t_pipelined", 2usize), ("aets_multi_epoch_2t_inline_dispatch", 0)]
    {
        g.bench_function(label, |b| {
            let engine = AetsEngine::builder(grouping.clone())
                .config(AetsConfig { threads: 2, pipeline_depth: depth, ..Default::default() })
                .build()
                .unwrap();
            b.iter(|| {
                let db = MemDb::new(w.num_tables());
                engine.replay_all(std::hint::black_box(&small_epochs), &db).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
