//! Memtable microbenchmarks: B+Tree point ops, version appends, and MVCC
//! snapshot reads.

use aets_common::{ColumnId, DmlOp, RowKey, TableId, Timestamp, TxnId, Value};
use aets_memtable::{BPlusTree, Table, Version};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_bptree(c: &mut Criterion) {
    let mut g = c.benchmark_group("bptree");
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("insert_100k_seq", |b| {
        b.iter(|| {
            let mut t = BPlusTree::new();
            for i in 0..N {
                t.insert(std::hint::black_box(i), i);
            }
            t
        })
    });
    let mut tree = BPlusTree::new();
    for i in 0..N {
        tree.insert(i * 2, i);
    }
    g.throughput(Throughput::Elements(1));
    g.bench_function("point_get", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % (N * 2);
            tree.get(std::hint::black_box(&k))
        })
    });
    g.finish();
}

fn bench_versions(c: &mut Criterion) {
    let mut g = c.benchmark_group("mvcc");
    let table = Table::new(TableId::new(0));
    for i in 0..1_000u64 {
        for v in 0..8u64 {
            table.apply_version(
                RowKey::new(i),
                Version {
                    txn_id: TxnId::new(i * 8 + v + 1),
                    commit_ts: Timestamp::from_micros((i * 8 + v + 1) * 10),
                    op: if v == 0 { DmlOp::Insert } else { DmlOp::Update },
                    cols: vec![(ColumnId::new((v % 3) as u16), Value::Int(v as i64))],
                },
            );
        }
    }
    g.throughput(Throughput::Elements(1));
    g.bench_function("read_row_latest", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 37) % 1_000;
            table.read_row(RowKey::new(std::hint::black_box(k)), Timestamp::MAX)
        })
    });
    g.bench_function("read_row_time_travel", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 37) % 1_000;
            table
                .read_row(RowKey::new(std::hint::black_box(k)), Timestamp::from_micros(k * 40 + 20))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bptree, bench_versions);
criterion_main!(benches);
