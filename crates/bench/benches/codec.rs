//! Value-log codec microbenchmarks: full decode vs metadata-only scan —
//! the cost asymmetry behind the C5-vs-ATR/AETS dispatch comparison.

use aets_wal::{decode_batch, encode_epoch, MetaScanner};
use aets_workloads::tpcc::{self, TpccConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_codec(c: &mut Criterion) {
    let w = tpcc::generate(&TpccConfig { num_txns: 1_000, warehouses: 2, ..Default::default() });
    let epochs = aets_wal::batch_into_epochs(w.txns.clone(), 1_000).unwrap();
    let entries = w.total_entries() as u64;

    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Elements(entries));

    g.bench_function("encode_epoch", |b| b.iter(|| encode_epoch(std::hint::black_box(&epochs[0]))));

    let encoded = encode_epoch(&epochs[0]);
    g.bench_function("decode_full", |b| {
        b.iter(|| decode_batch(std::hint::black_box(encoded.bytes.clone())).unwrap())
    });

    g.bench_function("scan_meta", |b| {
        b.iter(|| {
            MetaScanner::new(std::hint::black_box(encoded.bytes.clone())).fold(0usize, |n, r| {
                r.unwrap();
                n + 1
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
