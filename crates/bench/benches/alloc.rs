//! Control-plane microbenchmarks: the adaptive thread-allocation solver
//! and the DBSCAN grouping — both on the per-epoch critical path.

use aets_common::{FxHashSet, TableId};
use aets_replay::{allocate_threads, dbscan_1d, TableGrouping, UrgencyMode};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_alloc(c: &mut Criterion) {
    let pending: Vec<u64> = (0..64).map(|i| 1_000 + i * 37).collect();
    let rates: Vec<f64> = (0..64).map(|i| (i as f64 * 13.7) % 900.0).collect();
    c.bench_function("allocate_threads_64_groups", |b| {
        b.iter(|| {
            allocate_threads(std::hint::black_box(32), &pending, &rates, UrgencyMode::Log).unwrap()
        })
    });

    let mut points: Vec<f64> = (0..64).map(|i| ((i * librand(i)) % 1000) as f64).collect();
    points.sort_by(|a, b| a.partial_cmp(b).unwrap());
    c.bench_function("dbscan_64_points", |b| {
        b.iter(|| dbscan_1d(std::hint::black_box(&points), 10.0, 1))
    });

    let hot: FxHashSet<TableId> = (0..14u32).map(TableId::new).collect();
    c.bench_function("dbscan_grouping_65_tables", |b| {
        b.iter(|| TableGrouping::dbscan(65, &hot, |t| (t.raw() as f64 * 7.3) % 300.0, 0.3).unwrap())
    });
}

fn librand(i: usize) -> usize {
    (i.wrapping_mul(2654435761)) % 97 + 1
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
