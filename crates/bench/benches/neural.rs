//! Neural-substrate microbenchmarks: one DTGM-scale forward+backward pass
//! and its dominant kernels.

use aets_neural::{Tape, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::rc::Rc;

fn bench_neural(c: &mut Criterion) {
    let mut rng = aets_common::rng::seeded_rng(5);
    let n = 14usize; // tables
    let t = 12usize; // window
    let h = 48usize; // hidden (paper's optimum)

    let x = Tensor::rand_uniform(&mut rng, &[h, n, t], 0.5);
    let w = Tensor::rand_uniform(&mut rng, &[h, h, 2], 0.2);
    c.bench_function("conv1d_48x48x2_fwd", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.leaf(w.clone());
            tape.conv1d(std::hint::black_box(xv), wv, 2)
        })
    });

    let ident = {
        let mut m = Tensor::zeros(&[n, n]);
        for i in 0..n {
            m.data_mut()[i * n + i] = 1.0;
        }
        m
    };
    let adj = Rc::new(vec![ident.clone(), ident]);
    let mix_w = Tensor::rand_uniform(&mut rng, &[2 * h, h], 0.2);
    let target = Tensor::zeros(&[h, n, t]);
    c.bench_function("gcn_block_fwd_bwd", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.leaf(mix_w.clone());
            let y = tape.gcn_mix(xv, wv, adj.clone());
            let loss = tape.mae_loss(y, target.clone());
            tape.backward(std::hint::black_box(loss))
        })
    });
}

criterion_group!(benches, bench_neural);
criterion_main!(benches);
