//! Umbrella crate for the AETS reproduction workspace.
//!
//! Re-exports the public surface of every sub-crate so that examples and
//! integration tests can use a single dependency. Downstream users should
//! depend on the individual crates (`aets-replay`, `aets-memtable`, ...).

pub use aets_common as common;
pub use aets_fleet as fleet;
pub use aets_forecast as forecast;
pub use aets_memtable as memtable;
pub use aets_neural as neural;
pub use aets_replay as replay;
pub use aets_simulator as simulator;
pub use aets_telemetry as telemetry;
pub use aets_transport as transport;
pub use aets_wal as wal;
pub use aets_workloads as workloads;
